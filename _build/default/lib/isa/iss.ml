exception Bus_error of { addr : int; write : bool }

type t = {
  image : Asm.image;
  regs : int array;  (* 16 registers, 16-bit values *)
  ram : int array;  (* word-addressed *)
  rom : int array;
  (* peripherals *)
  mutable sfr_ie : int;
  mutable sfr_ifg : int;
  mutable gpio_in : int;
  mutable gpio_out : int;
  mutable clk_ctl : int;
  mutable clk_frozen : int;
  mutable clk_since : int;
  mutable wdt_ctl : int;
  mutable wdt_frozen : int;  (* counter value at the last control write *)
  mutable wdt_since : int;  (* cycle at which counting (re)started *)
  mutable dbg_ctl : int;
  mutable dbg_frozen : int;
  mutable dbg_since : int;
  mutable dbg_pc : int;
  mutable dbg_brk : int;
  mutable mpy_op1 : int;
  mutable mpy_mac : bool;
  mutable mpy_reslo : int;
  mutable mpy_reshi : int;
  (* execution state *)
  mutable halted : bool;
  mutable cycles : int;
  mutable retired : int;
  mutable irq_line : bool;
  mutable trace : (int * int) list;  (* gpio_out writes, newest first *)
}

let w16 v = v land 0xffff

let create image =
  {
    image;
    regs = Array.make 16 0;
    ram = Array.make Memmap.ram_words 0;
    rom = Asm.image_rom image;
    sfr_ie = 0;
    sfr_ifg = 0;
    gpio_in = 0;
    gpio_out = 0;
    clk_ctl = 0;
    clk_frozen = 0;
    clk_since = 0;
    wdt_ctl = 0x80;  (* watchdog held at reset *)
    wdt_frozen = 0;
    wdt_since = 0;
    dbg_ctl = 0;
    dbg_frozen = 0;
    dbg_since = 0;
    dbg_pc = 0;
    dbg_brk = 0;
    mpy_op1 = 0;
    mpy_mac = false;
    mpy_reslo = 0;
    mpy_reshi = 0;
    halted = false;
    cycles = 0;
    retired = 0;
    irq_line = false;
    trace = [];
  }

let reset t =
  Array.fill t.regs 0 16 0;
  Array.fill t.ram 0 Memmap.ram_words 0;
  t.sfr_ie <- 0;
  t.sfr_ifg <- 0;
  t.gpio_out <- 0;
  t.clk_ctl <- 0;
  t.clk_frozen <- 0;
  t.clk_since <- 0;
  t.wdt_ctl <- 0x80;
  t.wdt_frozen <- 0;
  t.wdt_since <- 0;
  t.dbg_ctl <- 0;
  t.dbg_frozen <- 0;
  t.dbg_since <- 0;
  t.dbg_pc <- 0;
  t.dbg_brk <- 0;
  t.mpy_op1 <- 0;
  t.mpy_mac <- false;
  t.mpy_reslo <- 0;
  t.mpy_reshi <- 0;
  t.halted <- false;
  t.cycles <- 0;
  t.retired <- 0;
  t.trace <- [];
  t.regs.(0) <- t.rom.((Memmap.reset_vector - Memmap.rom_base) / 2)

let reg t i = t.regs.(i)
let set_reg t i v = t.regs.(i) <- w16 v
let pc t = t.regs.(0)
let sr t = t.regs.(2)
let halted t = t.halted
let cycles t = t.cycles
let instructions_retired t = t.retired
let set_gpio_in t v = t.gpio_in <- w16 v
let gpio_out t = t.gpio_out
let output_trace t = List.rev t.trace
let set_irq_line t b = t.irq_line <- b

let wdt_running t = t.wdt_ctl land 0x80 = 0

let wdt_value t ~now =
  if wdt_running t then w16 (t.wdt_frozen + max 0 (now - t.wdt_since))
  else t.wdt_frozen

(* Gated free-running counters (clock module, debug cycle counter):
   value while running is frozen + (now - since). *)
let gated_value ~frozen ~since ~running ~now =
  if running then frozen + max 0 (now - since) else frozen

let clk_running t = t.clk_ctl land 4 <> 0
let dbg_counting t = t.dbg_ctl land 1 <> 0

let clk_value t ~now =
  gated_value ~frozen:t.clk_frozen ~since:t.clk_since ~running:(clk_running t)
    ~now
  land 0xFFFFF

let dbg_cyc_value t ~now =
  gated_value ~frozen:t.dbg_frozen ~since:t.dbg_since
    ~running:(dbg_counting t) ~now
  land 0xFFFFFFFF

(* Peripheral-file word read at an exact cycle [now]. *)
let periph_read t ~now addr =
  let m = addr land 0xfffe in
  if m = Memmap.sfr_ie then t.sfr_ie
  else if m = Memmap.sfr_ifg then t.sfr_ifg
  else if m = Memmap.gpio_in then t.gpio_in
  else if m = Memmap.gpio_out then t.gpio_out
  else if m = Memmap.sim_halt then 0
  else if m = Memmap.clk_ctl then t.clk_ctl
  else if m = Memmap.clk_cnt then
    (* the hardware divider counter is 20 bits wide *)
    w16 (clk_value t ~now lsr (t.clk_ctl land 3))
  else if m = Memmap.wdt_ctl then t.wdt_ctl
  else if m = Memmap.wdt_cnt then wdt_value t ~now
  else if m = Memmap.dbg_ctl then t.dbg_ctl
  else if m = Memmap.dbg_pc then t.dbg_pc
  else if m = Memmap.dbg_brk then t.dbg_brk
  else if m = Memmap.dbg_cyc_lo then w16 (dbg_cyc_value t ~now)
  else if m = Memmap.dbg_cyc_hi then w16 (dbg_cyc_value t ~now lsr 16)
  else if m = Memmap.mpy_op1 then t.mpy_op1
  else if m = Memmap.mpy_mac then t.mpy_op1
  else if m = Memmap.mpy_op2 then 0
  else if m = Memmap.mpy_reslo then t.mpy_reslo
  else if m = Memmap.mpy_reshi then t.mpy_reshi
  else raise (Bus_error { addr; write = false })

let periph_write t ~now addr v =
  let m = addr land 0xfffe in
  if m = Memmap.sfr_ie then t.sfr_ie <- v
  else if m = Memmap.sfr_ifg then t.sfr_ifg <- v
  else if m = Memmap.gpio_in then ()  (* input pins: writes ignored *)
  else if m = Memmap.gpio_out then begin
    t.gpio_out <- v;
    t.trace <- (t.retired, v) :: t.trace
  end
  else if m = Memmap.sim_halt then t.halted <- true
  else if m = Memmap.clk_ctl then begin
    (* gating change takes effect at the end of the write cycle; an
       already-running counter still ticks at that edge *)
    t.clk_frozen <-
      (clk_value t ~now + if clk_running t then 1 else 0) land 0xFFFFF;
    t.clk_since <- now + 1;
    t.clk_ctl <- v
  end
  else if m = Memmap.wdt_ctl then begin
    (* any control write clears the counter; the hardware counter is
       zero on the cycle after the write (cleared at the clock edge) *)
    t.wdt_frozen <- 0;
    t.wdt_since <- now + 1;
    t.wdt_ctl <- v
  end
  else if m = Memmap.wdt_cnt then ()
  else if m = Memmap.dbg_ctl then begin
    t.dbg_frozen <-
      (dbg_cyc_value t ~now + if dbg_counting t then 1 else 0)
      land 0xFFFFFFFF;
    t.dbg_since <- now + 1;
    t.dbg_ctl <- v
  end
  else if m = Memmap.dbg_pc then ()
  else if m = Memmap.dbg_brk then t.dbg_brk <- v
  else if m = Memmap.dbg_cyc_lo || m = Memmap.dbg_cyc_hi then ()
  else if m = Memmap.mpy_op1 then begin
    t.mpy_op1 <- v;
    t.mpy_mac <- false
  end
  else if m = Memmap.mpy_mac then begin
    t.mpy_op1 <- v;
    t.mpy_mac <- true
  end
  else if m = Memmap.mpy_op2 then begin
    let prod = t.mpy_op1 * v in
    let acc =
      if t.mpy_mac then (t.mpy_reshi lsl 16) lor t.mpy_reslo else 0
    in
    let total = (acc + prod) land 0xffffffff in
    t.mpy_reslo <- total land 0xffff;
    t.mpy_reshi <- (total lsr 16) land 0xffff
  end
  else if m = Memmap.mpy_reslo then t.mpy_reslo <- v
  else if m = Memmap.mpy_reshi then t.mpy_reshi <- v
  else raise (Bus_error { addr; write = true })

let bus_read_word t ~now addr =
  let a = addr land 0xfffe in
  if Memmap.in_ram a then t.ram.((a - Memmap.ram_base) / 2)
  else if Memmap.in_rom a then t.rom.((a - Memmap.rom_base) / 2)
  else if Memmap.in_periph a then periph_read t ~now a
  else raise (Bus_error { addr; write = false })

let bus_write_word t ~now addr v =
  let a = addr land 0xfffe in
  let v = w16 v in
  if Memmap.in_ram a then t.ram.((a - Memmap.ram_base) / 2) <- v
  else if Memmap.in_periph a then periph_write t ~now a v
  else raise (Bus_error { addr; write = true })

let bus_read t ~now ~size addr =
  let word = bus_read_word t ~now addr in
  match size with
  | Isa.Word -> word
  | Isa.Byte -> if addr land 1 = 1 then (word lsr 8) land 0xff else word land 0xff

let bus_write t ~now ~size addr v =
  match size with
  | Isa.Word -> bus_write_word t ~now addr v
  | Isa.Byte ->
    let old = bus_read_word t ~now addr in
    let v = v land 0xff in
    let merged =
      if addr land 1 = 1 then (v lsl 8) lor (old land 0x00ff)
      else (old land 0xff00) lor v
    in
    bus_write_word t ~now addr merged

let read_word t addr = bus_read_word t ~now:t.cycles addr
let read_ram_word t addr = t.ram.((addr land 0xfffe - Memmap.ram_base) / 2)
let write_ram_word t addr v = t.ram.((addr land 0xfffe - Memmap.ram_base) / 2) <- w16 v
let ram_snapshot t = Array.copy t.ram

(* ---------------- flags ---------------- *)

let get_flag t bit = (t.regs.(2) lsr bit) land 1 = 1

let set_flags t ~c ~z ~n ~v =
  let s = t.regs.(2) in
  let put b bit s = if b then s lor (1 lsl bit) else s land lnot (1 lsl bit) in
  t.regs.(2) <-
    w16 (put c Isa.flag_c (put z Isa.flag_z (put n Isa.flag_n (put v Isa.flag_v s))))

let msb_of size = match size with Isa.Word -> 0x8000 | Isa.Byte -> 0x80
let mask_of size = match size with Isa.Word -> 0xffff | Isa.Byte -> 0xff

(* ---------------- ALU ---------------- *)

let alu_add t ~size ~carry_in a b =
  let mask = mask_of size and msb = msb_of size in
  let cin = if carry_in then 1 else 0 in
  let full = (a land mask) + (b land mask) + cin in
  let r = full land mask in
  let c = full > mask in
  let v = a land msb = b land msb && r land msb <> a land msb in
  set_flags t ~c ~z:(r = 0) ~n:(r land msb <> 0) ~v;
  r

let alu_dadd t ~size a b =
  let digits = match size with Isa.Word -> 4 | Isa.Byte -> 2 in
  let carry = ref (if get_flag t Isa.flag_c then 1 else 0) in
  let r = ref 0 in
  for d = 0 to digits - 1 do
    let da = (a lsr (4 * d)) land 0xf and db = (b lsr (4 * d)) land 0xf in
    (* the decimal adjust adds 6 and keeps the low nibble, exactly as
       the gate-level digit adder does — the distinction only matters
       for non-BCD operand digits, where both models must still agree *)
    let s = da + db + !carry in
    let s, co = if s > 9 then ((s + 6) land 0xf, 1) else (s, 0) in
    carry := co;
    r := !r lor (s lsl (4 * d))
  done;
  let msb = msb_of size in
  set_flags t ~c:(!carry = 1) ~z:(!r = 0) ~n:(!r land msb <> 0) ~v:false;
  !r

let exec_two t ~size (op : Isa.two_op) ~src_v ~dst_v =
  let mask = mask_of size and msb = msb_of size in
  let s = src_v land mask and d = dst_v land mask in
  let logical_flags r =
    set_flags t ~c:(r <> 0) ~z:(r = 0) ~n:(r land msb <> 0) ~v:false;
    r
  in
  match op with
  | Isa.MOV -> Some s
  | Isa.ADD -> Some (alu_add t ~size ~carry_in:false d s)
  | Isa.ADDC -> Some (alu_add t ~size ~carry_in:(get_flag t Isa.flag_c) d s)
  | Isa.SUB -> Some (alu_add t ~size ~carry_in:true d (lnot s land mask))
  | Isa.SUBC ->
    Some (alu_add t ~size ~carry_in:(get_flag t Isa.flag_c) d (lnot s land mask))
  | Isa.CMP ->
    ignore (alu_add t ~size ~carry_in:true d (lnot s land mask));
    None
  | Isa.DADD -> Some (alu_dadd t ~size d s)
  | Isa.BIT ->
    ignore (logical_flags (d land s));
    None
  | Isa.BIC -> Some (d land lnot s land mask)
  | Isa.BIS -> Some (d lor s)
  | Isa.XOR ->
    let r = (d lxor s) land mask in
    set_flags t ~c:(r <> 0) ~z:(r = 0) ~n:(r land msb <> 0)
      ~v:(d land msb <> 0 && s land msb <> 0);
    Some r
  | Isa.AND -> Some (logical_flags (d land s))

(* ---------------- operand access ---------------- *)

(* Stage offsets within the executing instruction; see Timing. *)

let src_operand t ~size ~(src : Isa.src) ~stage =
  (* Returns (value, address option).  Consumes extension words /
     autoincrements.  [stage] is a mutable cycle offset counter. *)
  let next_pc_word () =
    let a = t.regs.(0) in
    incr stage;
    let w = bus_read_word t ~now:(t.cycles + !stage) a in
    t.regs.(0) <- w16 (a + 2);
    w
  in
  match src with
  | Isa.Sreg r ->
    let v = t.regs.(r) in
    (v land mask_of size, None)
  | Isa.Imm n ->
    if Timing.src_ext_cycles src = 1 then begin
      let w = next_pc_word () in
      (w land mask_of size, None)
    end
    else (n land mask_of size, None)
  | Isa.Sidx (r, x) ->
    let x' = if Timing.src_ext_cycles src = 1 then next_pc_word () else x in
    (* the assembler encodes &abs as Sidx(sr, x) with base 0 *)
    let base = if r = Isa.sr then 0 else t.regs.(r) in
    let addr = w16 (base + x') in
    incr stage;
    (bus_read t ~now:(t.cycles + !stage) ~size addr, Some addr)
  | Isa.Sind r ->
    let addr = t.regs.(r) in
    incr stage;
    (bus_read t ~now:(t.cycles + !stage) ~size addr, Some addr)
  | Isa.Sinc r ->
    let addr = t.regs.(r) in
    let bump = if size = Isa.Byte && r <> Isa.pc && r <> Isa.sp then 1 else 2 in
    incr stage;
    let v = bus_read t ~now:(t.cycles + !stage) ~size addr in
    t.regs.(r) <- w16 (addr + bump);
    (v, Some addr)

let write_reg t ~size r v =
  (* byte writes zero-extend into the register *)
  t.regs.(r) <- v land mask_of size

(* ---------------- instruction execution ---------------- *)

let fetch_insn t =
  let pc0 = t.regs.(0) in
  let w0 = bus_read_word t ~now:t.cycles pc0 in
  let rest =
    [
      bus_read_word t ~now:t.cycles (w16 (pc0 + 2));
      bus_read_word t ~now:t.cycles (w16 (pc0 + 4));
    ]
  in
  Isa.decode w0 rest

let current_insn t = fst (fetch_insn t)

let take_irq t =
  (* pre-empted fetch (cycle 0), push PC (1), push SR (2), vector (3) *)
  t.regs.(1) <- w16 (t.regs.(1) - 2);
  bus_write_word t ~now:(t.cycles + 1) t.regs.(1) t.regs.(0);
  t.regs.(1) <- w16 (t.regs.(1) - 2);
  bus_write_word t ~now:(t.cycles + 2) t.regs.(1) t.regs.(2);
  t.regs.(2) <- 0;
  t.sfr_ifg <- t.sfr_ifg land lnot 1;
  t.regs.(0) <- bus_read_word t ~now:(t.cycles + 3) Memmap.irq_vector;
  t.cycles <- t.cycles + Timing.irq_entry_cycles

let step t =
  if t.halted then ()
  else begin
    (* The pending check sees the flag as of the previous boundary: in
       hardware the line is latched into IFG at clock edges, so it
       cannot preempt the instruction already being fetched.  The
       line is ORed in at the end of this step (below). *)
    if
      t.sfr_ifg land t.sfr_ie land 1 = 1 && get_flag t Isa.flag_gie
    then take_irq t
    else begin
      (* Debug block: PC trace latch and breakpoint compare happen at
         the fetch edge in hardware. *)
      if t.dbg_ctl land 1 = 1 then t.dbg_pc <- t.regs.(0);
      if t.dbg_ctl land 2 = 2 && t.regs.(0) = t.dbg_brk then
        t.dbg_ctl <- t.dbg_ctl lor 0x8000;
      let insn, _words = fetch_insn t in
      let total_cycles = Timing.cycles insn in
      let stage = ref 0 in  (* FETCH is stage 0 *)
      t.regs.(0) <- w16 (t.regs.(0) + 2);
      (match insn with
      | Isa.Jump { cond; off } ->
        if Isa.cond_holds cond ~sr_value:t.regs.(2) then
          t.regs.(0) <- w16 (t.regs.(0) + (2 * off))
      | Isa.Two { op; size; src; dst } -> (
        let src_v, _ = src_operand t ~size ~src ~stage in
        match dst with
        | Isa.Dreg r ->
          let dst_v = t.regs.(r) land mask_of size in
          incr stage (* EXEC *);
          (match exec_two t ~size op ~src_v ~dst_v with
          | Some r_v -> write_reg t ~size r r_v
          | None -> ())
        | Isa.Didx (r, x) ->
          incr stage (* DST_EXT: consume the extension word *);
          t.regs.(0) <- w16 (t.regs.(0) + 2);
          let base = if r = Isa.sr then 0 else t.regs.(r) in
          let addr = w16 (base + x) in
          incr stage (* DST_RD *);
          let dst_v = bus_read t ~now:(t.cycles + !stage) ~size addr in
          incr stage (* EXEC *);
          (match exec_two t ~size op ~src_v ~dst_v with
          | Some r_v ->
            incr stage (* DST_WR *);
            bus_write t ~now:(t.cycles + !stage) ~size addr r_v
          | None -> ()))
      | Isa.One { op = Isa.RETI; _ } ->
        t.regs.(2) <- bus_read_word t ~now:(t.cycles + 1) t.regs.(1);
        t.regs.(1) <- w16 (t.regs.(1) + 2);
        t.regs.(0) <- bus_read_word t ~now:(t.cycles + 2) t.regs.(1);
        t.regs.(1) <- w16 (t.regs.(1) + 2)
      | Isa.One { op = Isa.PUSH; size; dst } ->
        let v, _ = src_operand t ~size ~src:dst ~stage in
        incr stage (* EXEC: SP -= 2 *);
        t.regs.(1) <- w16 (t.regs.(1) - 2);
        incr stage (* WR *);
        (* push.b writes a zero-extended word (see DESIGN.md) *)
        bus_write_word t ~now:(t.cycles + !stage) t.regs.(1) (v land mask_of size)
      | Isa.One { op = Isa.CALL; dst; _ } ->
        let target, _addr = src_operand t ~size:Isa.Word ~src:dst ~stage in
        incr stage (* EXEC *);
        t.regs.(1) <- w16 (t.regs.(1) - 2);
        incr stage (* WR *);
        bus_write_word t ~now:(t.cycles + !stage) t.regs.(1) t.regs.(0);
        t.regs.(0) <- w16 target
      | Isa.One { op; size; dst } -> (
        let v, addr = src_operand t ~size ~src:dst ~stage in
        incr stage (* EXEC *);
        let mask = mask_of size and msb = msb_of size in
        let result =
          match op with
          | Isa.RRC ->
            let cin = if get_flag t Isa.flag_c then msb else 0 in
            let r = (v lsr 1) lor cin in
            set_flags t ~c:(v land 1 = 1) ~z:(r = 0) ~n:(r land msb <> 0)
              ~v:false;
            Some r
          | Isa.RRA ->
            let r = (v lsr 1) lor (v land msb) in
            set_flags t ~c:(v land 1 = 1) ~z:(r = 0) ~n:(r land msb <> 0)
              ~v:false;
            Some r
          | Isa.SWPB ->
            Some (((v lsl 8) lor (v lsr 8)) land 0xffff)
          | Isa.SXT ->
            let r = if v land 0x80 <> 0 then v lor 0xff00 else v land 0xff in
            set_flags t ~c:(r <> 0) ~z:(r = 0) ~n:(r land 0x8000 <> 0) ~v:false;
            Some r
          | Isa.PUSH | Isa.CALL | Isa.RETI -> assert false
        in
        ignore mask;
        let wsize = match op with Isa.SWPB | Isa.SXT -> Isa.Word | _ -> size in
        match result, dst, addr with
        | Some r, Isa.Sreg rn, _ -> write_reg t ~size:wsize rn r
        | Some r, _, Some a ->
          incr stage (* WB *);
          bus_write t ~now:(t.cycles + !stage) ~size:wsize a r
        | Some _, _, None -> ()  (* e.g. rra #4: result discarded *)
        | None, _, _ -> ()));
      t.cycles <- t.cycles + total_cycles;
      t.retired <- t.retired + 1
    end;
    if t.irq_line then t.sfr_ifg <- t.sfr_ifg lor 1
  end

let run ?(max_insns = 2_000_000) t =
  let n = ref 0 in
  while (not t.halted) && !n < max_insns do
    step t;
    incr n
  done;
  if not t.halted then
    failwith (Printf.sprintf "Iss.run: not halted after %d instructions" max_insns)
