(** VCD (value-change-dump) waveform writer for gate-level runs.

    Records a chosen set of named vectors (ports and analysis hooks)
    once per clock cycle; the output loads in any standard waveform
    viewer.  Ternary X values map to VCD 'x'. *)

type t

val create :
  Buffer.t -> Engine.t -> signals:string list -> t
(** [signals] are names resolvable by
    {!Bespoke_netlist.Netlist.find_name} (hooks, output ports, input
    ports).  Writes the VCD header immediately.
    @raise Not_found for an unknown signal name. *)

val sample : t -> time:int -> unit
(** Record the current engine values at the given timestamp (only
    changed signals are emitted, per the VCD format). *)

val finish : t -> time:int -> unit
(** Emit the final timestamp. *)
