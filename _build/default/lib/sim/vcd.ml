module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist

type signal = {
  name : string;
  code : string;  (* VCD identifier *)
  ids : int array;  (* gate ids, LSB first *)
  mutable last : string option;
}

type t = { buf : Buffer.t; eng : Engine.t; signals : signal list }

let code_of_index i =
  (* printable VCD identifier characters: '!' .. '~' *)
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create buf eng ~signals =
  let net = Engine.netlist eng in
  let signals =
    List.mapi
      (fun i name ->
        { name; code = code_of_index i; ids = Netlist.find_name net name; last = None })
      signals
  in
  Buffer.add_string buf "$timescale 10ns $end\n";
  Buffer.add_string buf "$scope module bespoke $end\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" (Array.length s.ids) s.code
           s.name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  { buf; eng; signals }

let value_string t (s : signal) =
  let n = Array.length s.ids in
  String.init n (fun i ->
      Bit.to_char (Engine.value t.eng s.ids.(n - 1 - i)))

let sample t ~time =
  let changed =
    List.filter
      (fun s ->
        let v = value_string t s in
        match s.last with
        | Some old when String.equal old v -> false
        | _ ->
          s.last <- Some v;
          true)
      t.signals
  in
  if changed <> [] then begin
    Buffer.add_string t.buf (Printf.sprintf "#%d\n" time);
    List.iter
      (fun s ->
        let v = Option.get s.last in
        if Array.length s.ids = 1 then
          Buffer.add_string t.buf (Printf.sprintf "%s%s\n" v s.code)
        else Buffer.add_string t.buf (Printf.sprintf "b%s %s\n" v s.code))
      changed
  end

let finish t ~time = Buffer.add_string t.buf (Printf.sprintf "#%d\n" time)
