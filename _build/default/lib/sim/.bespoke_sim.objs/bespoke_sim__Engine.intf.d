lib/sim/engine.mli: Bespoke_logic Bespoke_netlist
