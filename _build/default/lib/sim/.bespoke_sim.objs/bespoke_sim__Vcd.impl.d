lib/sim/vcd.ml: Array Bespoke_logic Bespoke_netlist Buffer Char Engine List Option Printf String
