lib/sim/memory.mli: Bespoke_logic
