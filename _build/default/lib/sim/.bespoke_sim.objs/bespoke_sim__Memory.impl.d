lib/sim/memory.ml: Array Bespoke_logic Bytes Char List
