lib/sim/engine.ml: Array Bespoke_logic Bespoke_netlist Bytes Char Int List Printf Stack
