lib/sim/vcd.mli: Buffer Engine
