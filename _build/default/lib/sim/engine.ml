module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

(* Compiled opcodes for the inner evaluation loop. *)
let op_buf = 0

and op_not = 1

and op_and = 2

and op_or = 3

and op_nand = 4

and op_nor = 5

and op_xor = 6

and op_xnor = 7

and op_mux = 8

type t = {
  net : Netlist.t;
  order : int array;  (* levelized combinational order *)
  opcode : int array;
  fi0 : int array;
  fi1 : int array;
  fi2 : int array;
  values : Bytes.t;  (* current settled value per gate, codes 0/1/2 *)
  prev : Bytes.t;  (* settled value at the last committed cycle *)
  dffs : int array;
  dff_next : Bytes.t;  (* scratch for the clock edge *)
  toggles : int array;
  possibly : Bytes.t;  (* 0/1 flags *)
  mutable committed : int;
  topo_index : int array;  (* position of each gate in [order], -1 for sources *)
}

type cone = int array  (* gate ids in topological order, excluding sources *)

let code_of_bit = Bit.to_int
let bit_of_code = Bit.of_int_exn

let create net =
  let ng = Netlist.gate_count net in
  let order = Netlist.levelize net in
  let opcode = Array.make ng (-1) in
  let fi0 = Array.make ng 0 in
  let fi1 = Array.make ng 0 in
  let fi2 = Array.make ng 0 in
  let dffs = ref [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      (match g.op with
      | Gate.Dff _ ->
        dffs := id :: !dffs;
        (* [step] reads the D pin through fi0 even though DFFs are
           sources for levelization purposes. *)
        fi0.(id) <- g.fanin.(0)
      | _ -> ());
      let set c =
        opcode.(id) <- c;
        (match Array.length g.fanin with
        | 0 -> ()
        | 1 -> fi0.(id) <- g.fanin.(0)
        | 2 ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1)
        | _ ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1);
          fi2.(id) <- g.fanin.(2))
      in
      match g.op with
      | Gate.Const _ | Gate.Input | Gate.Dff _ -> ()
      | Gate.Buf -> set op_buf
      | Gate.Not -> set op_not
      | Gate.And -> set op_and
      | Gate.Or -> set op_or
      | Gate.Nand -> set op_nand
      | Gate.Nor -> set op_nor
      | Gate.Xor -> set op_xor
      | Gate.Xnor -> set op_xnor
      | Gate.Mux -> set op_mux)
    net.Netlist.gates;
  let topo_index = Array.make ng (-1) in
  Array.iteri (fun pos id -> topo_index.(id) <- pos) order;
  let dffs = Array.of_list (List.rev !dffs) in
  {
    net;
    order;
    opcode;
    fi0;
    fi1;
    fi2;
    values = Bytes.make ng (Char.chr Bit.code_x);
    prev = Bytes.make ng (Char.chr Bit.code_x);
    dffs;
    dff_next = Bytes.make (Array.length dffs) '\000';
    toggles = Array.make ng 0;
    possibly = Bytes.make ng '\000';
    committed = 0;
    topo_index;
  }

let netlist t = t.net
let get t id = Char.code (Bytes.unsafe_get t.values id)
let put t id c = Bytes.unsafe_set t.values id (Char.unsafe_chr c)
let value t id = bit_of_code (get t id)

let eval_one t id =
  let c = t.opcode.(id) in
  let a = get t t.fi0.(id) in
  let r =
    if c = op_buf then a
    else if c = op_not then Bit.tbl_not.(a)
    else
      let b = get t t.fi1.(id) in
      if c = op_and then Bit.tbl_and.((a * 3) + b)
      else if c = op_or then Bit.tbl_or.((a * 3) + b)
      else if c = op_nand then Bit.tbl_nand.((a * 3) + b)
      else if c = op_nor then Bit.tbl_nor.((a * 3) + b)
      else if c = op_xor then Bit.tbl_xor.((a * 3) + b)
      else if c = op_xnor then Bit.tbl_xnor.((a * 3) + b)
      else
        let s = get t t.fi2.(id) in
        Bit.tbl_mux.((a * 9) + (b * 3) + s)
  in
  put t id r

(* Mux fanin layout is [sel; a; b]: fi0 = sel, fi1 = a, fi2 = b, so the
   table index must be sel*9 + a*3 + b. *)

let eval t =
  let order = t.order in
  for k = 0 to Array.length order - 1 do
    eval_one t order.(k)
  done

let make_cone t (sources : int array) =
  let ng = Netlist.gate_count t.net in
  let fanout = Netlist.fanout t.net in
  let in_cone = Array.make ng false in
  let stack = Stack.create () in
  Array.iter
    (fun id ->
      Array.iter
        (fun r ->
          if (not in_cone.(r)) && not (Gate.is_source t.net.Netlist.gates.(r))
          then begin
            in_cone.(r) <- true;
            Stack.push r stack
          end)
        fanout.(id))
    sources;
  while not (Stack.is_empty stack) do
    let id = Stack.pop stack in
    Array.iter
      (fun r ->
        if (not in_cone.(r)) && not (Gate.is_source t.net.Netlist.gates.(r))
        then begin
          in_cone.(r) <- true;
          Stack.push r stack
        end)
      fanout.(id)
  done;
  let members = ref [] in
  Array.iteri (fun id b -> if b then members := id :: !members) in_cone;
  let cone = Array.of_list !members in
  Array.sort (fun a b -> Int.compare t.topo_index.(a) t.topo_index.(b)) cone;
  cone

let eval_cone t (cone : cone) =
  for k = 0 to Array.length cone - 1 do
    eval_one t cone.(k)
  done

let set_gate t id b =
  (match t.net.Netlist.gates.(id).op with
  | Gate.Input -> ()
  | op ->
    invalid_arg
      (Printf.sprintf "Engine.set_gate: gate %d is %s, not an input" id
         (Gate.op_name op)));
  put t id (code_of_bit b)

let find_port t name = Netlist.find_input t.net name

let set_input t name (v : Bvec.t) =
  let ids = find_port t name in
  if Array.length ids <> Bvec.width v then
    invalid_arg (Printf.sprintf "Engine.set_input %s: width mismatch" name);
  Array.iteri (fun i id -> set_gate t id v.(i)) ids

let set_input_int t name n =
  let ids = find_port t name in
  set_input t name (Bvec.of_int ~width:(Array.length ids) n)

let set_input_x t name =
  let ids = find_port t name in
  Array.iter (fun id -> set_gate t id Bit.X) ids

let set_all_inputs_x t =
  List.iter (fun (name, _) -> set_input_x t name) t.net.Netlist.input_ports

let read t name =
  let ids = Netlist.find_name t.net name in
  Array.map (fun id -> value t id) ids

let read_int t name = Bvec.to_int (read t name)

let reset t =
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.op with
      | Gate.Const b -> put t id (code_of_bit b)
      | Gate.Input -> put t id Bit.code_x
      | Gate.Dff init -> put t id (code_of_bit init)
      | _ -> ())
    t.net.Netlist.gates;
  eval t;
  Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values);
  t.committed <- 0

let step t =
  let dffs = t.dffs in
  for i = 0 to Array.length dffs - 1 do
    let id = dffs.(i) in
    Bytes.unsafe_set t.dff_next i
      (Char.unsafe_chr (get t t.fi0.(id)))
  done;
  for i = 0 to Array.length dffs - 1 do
    put t dffs.(i) (Char.code (Bytes.unsafe_get t.dff_next i))
  done;
  eval t

let commit_cycle t =
  let ng = Bytes.length t.values in
  for id = 0 to ng - 1 do
    let cur = Char.code (Bytes.unsafe_get t.values id) in
    let old = Char.code (Bytes.unsafe_get t.prev id) in
    if cur <> old then t.toggles.(id) <- t.toggles.(id) + 1;
    if cur <> old || cur = Bit.code_x then
      Bytes.unsafe_set t.possibly id '\001'
  done;
  Bytes.blit t.values 0 t.prev 0 ng;
  t.committed <- t.committed + 1

let cycles_committed t = t.committed
let toggle_counts t = Array.copy t.toggles

let possibly_toggled t =
  Array.init (Bytes.length t.possibly) (fun i ->
      Bytes.get t.possibly i <> '\000')

let merge_possibly_toggled_into t (acc : bool array) =
  for i = 0 to Bytes.length t.possibly - 1 do
    if Bytes.unsafe_get t.possibly i <> '\000' then acc.(i) <- true
  done

let clear_activity t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  Bytes.fill t.possibly 0 (Bytes.length t.possibly) '\000';
  Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values);
  t.committed <- 0

let sync_prev t = Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values)

let snapshot_values t =
  Array.init (Bytes.length t.values) (fun i -> bit_of_code (get t i))

let dff_ids t = Array.copy t.dffs
let dff_state t = Array.map (fun id -> value t id) t.dffs

let restore_dff_state t (s : Bvec.t) =
  if Bvec.width s <> Array.length t.dffs then
    invalid_arg "Engine.restore_dff_state: width mismatch";
  Array.iteri (fun i id -> put t id (code_of_bit s.(i))) t.dffs;
  eval t
