lib/programs/subneg.ml: Benchmark List
