lib/programs/benchmark.mli: Bespoke_isa
