lib/programs/benchmark.ml: Bespoke_isa Int List Printf String
