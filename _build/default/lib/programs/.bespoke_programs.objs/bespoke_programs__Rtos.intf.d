lib/programs/rtos.mli: Benchmark
