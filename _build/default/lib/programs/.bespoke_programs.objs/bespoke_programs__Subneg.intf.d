lib/programs/subneg.mli: Benchmark
