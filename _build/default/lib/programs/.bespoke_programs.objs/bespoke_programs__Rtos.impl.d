lib/programs/rtos.ml: Benchmark
