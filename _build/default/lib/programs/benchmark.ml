module Asm = Bespoke_isa.Asm
module Memmap = Bespoke_isa.Memmap

type group = Sensor | Eembc | Unit_test | Synthetic

type t = {
  name : string;
  description : string;
  group : group;
  source : string;
  input_ranges : (int * int) list;
  gen_inputs : int -> (int * int) list * int;
  uses_irq : bool;
  irq_pulses : int -> int list;
  result_addrs : int list;
}

let image b = Asm.assemble b.source
let input_base = 0x0300
let output_base = 0x0380

let rand16 ~state =
  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
  (!state lsr 7) land 0xFFFF

let words ~state ~base ~count ?(mask = 0xFFFF) () =
  List.init count (fun i -> (base + (2 * i), rand16 ~state land mask))

let no_irq _ = []
let no_inputs _ = ([], 0)

let mk ?(group = Sensor) ?(input_ranges = []) ?(gen_inputs = no_inputs)
    ?(uses_irq = false) ?(irq_pulses = no_irq) ?(result_addrs = [ output_base ])
    name description source =
  {
    name;
    description;
    group;
    source;
    input_ranges;
    gen_inputs;
    uses_irq;
    irq_pulses;
    result_addrs;
  }

(* Common source prologue: symbolic names for the memory map. *)
let prologue =
  Printf.sprintf
    {|
        .equ IN, 0x%04x
        .equ OUT, 0x%04x
        .equ GPIO_IN, 0x%04x
        .equ GPIO_OUT, 0x%04x
        .equ MPY, 0x%04x
        .equ MAC, 0x%04x
        .equ OP2, 0x%04x
        .equ RESLO, 0x%04x
        .equ RESHI, 0x%04x
        .equ IE, 0x%04x
        .equ IFG, 0x%04x
        .equ WDTCTL, 0x%04x
        .equ WDTCNT, 0x%04x
        .equ DBGCTL, 0x%04x
        .equ DBGPC, 0x%04x
        .equ DBGBRK, 0x%04x
        .equ DBGCYCLO, 0x%04x
        .equ DBGCYCHI, 0x%04x
        .equ CLKCTL, 0x%04x
        .equ CLKCNT, 0x%04x
|}
    input_base output_base Memmap.gpio_in Memmap.gpio_out Memmap.mpy_op1
    Memmap.mpy_mac Memmap.mpy_op2 Memmap.mpy_reslo Memmap.mpy_reshi
    Memmap.sfr_ie Memmap.sfr_ifg Memmap.wdt_ctl Memmap.wdt_cnt Memmap.dbg_ctl
    Memmap.dbg_pc Memmap.dbg_brk Memmap.dbg_cyc_lo Memmap.dbg_cyc_hi
    Memmap.clk_ctl Memmap.clk_cnt

let src body = prologue ^ body

(* ------------------------------------------------------------------ *)
(* Sensor benchmarks                                                    *)

let bin_search =
  mk "binSearch" "Binary search over a 16-word sorted input table"
    ~input_ranges:[ (input_base, input_base + 33) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 17) in
      (* sorted table *)
      let tbl =
        List.init 16 (fun _ -> rand16 ~state land 0x0FFF)
        |> List.sort Int.compare
      in
      let key =
        if seed land 1 = 0 then List.nth tbl (seed mod 16)
        else rand16 ~state land 0x0FFF
      in
      ( List.mapi (fun i v -> (input_base + (2 * i), v)) tbl
        @ [ (input_base + 32, key) ],
        0 ))
    ~result_addrs:[ output_base ]
    (src
       {|
        .equ KEY, 0x0320
start:  mov #0x0400, sp
        clr r4               ; lo (word index)
        mov #16, r5          ; hi (exclusive)
        mov &KEY, r8
        mov #0xffff, r9      ; result: not found
loop:   cmp r5, r4           ; lo - hi
        jhs done
        mov r4, r6
        add r5, r6
        rra r6               ; mid = (lo+hi)/2
        mov r6, r7
        rla r7               ; byte offset
        and #0x001e, r7      ; bound the table index
        mov IN(r7), r10
        cmp r8, r10          ; table[mid] - key
        jeq found
        jlo less
        mov r6, r5           ; hi = mid
        jmp loop
less:   mov r6, r4           ; lo = mid + 1
        inc r4
        jmp loop
found:  mov r6, r9
done:   mov r9, &OUT
        mov r9, &GPIO_OUT
        halt
|})

let div =
  mk "div" "Unsigned 16/16 restoring division"
    ~input_ranges:[ (input_base, input_base + 3) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 99) in
      let n = rand16 ~state in
      let d = max 1 (rand16 ~state land 0x0FFF) in
      ([ (input_base, n); (input_base + 2, d) ], 0))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
start:  mov #0x0400, sp
        mov &IN, r4          ; dividend
        mov &IN+2, r5        ; divisor
        clr r6               ; quotient
        clr r7               ; remainder
        mov #16, r8
dloop:  rla r6
        rla r4               ; msb -> C
        rlc r7
        jc dsub              ; remainder overflowed 16 bits
        cmp r5, r7
        jlo dnext
dsub:   sub r5, r7
        bis #1, r6
dnext:  dec r8
        jnz dloop
        mov r6, &OUT         ; quotient
        mov r7, &OUT+2       ; remainder
        mov r6, &GPIO_OUT
        halt
|})

let in_sort =
  mk "inSort" "In-place insertion sort of 8 input words"
    ~input_ranges:[ (input_base, input_base + 15) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 3) in
      (words ~state ~base:input_base ~count:8 (), 0))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  mov #0x0400, sp
        mov #2, r4           ; i (byte offset)
outer:  cmp #16, r4
        jhs sorted
        mov r4, r15
        and #0x000e, r15
        mov IN(r15), r5      ; key
        mov r4, r6           ; j
inner:  tst r6
        jz insert
        mov r6, r7
        sub #2, r7
        and #0x000e, r7      ; bound the load index
        mov IN(r7), r8       ; a[j-1]
        cmp r5, r8           ; a[j-1] - key
        jlo insert
        jeq insert
        mov r6, r15
        and #0x000e, r15     ; bound the store index
        mov r8, IN(r15)      ; a[j] = a[j-1]
        sub #2, r6
        jmp inner
insert: mov r6, r15
        and #0x000e, r15
        mov r5, IN(r15)
        incd r4
        jmp outer
sorted: ; checksum the sorted array
        clr r9
        clr r10
cksum:  mov IN(r10), r11
        add r11, r9
        incd r10
        cmp #16, r10
        jlo cksum
        mov r9, &OUT
        mov r9, &GPIO_OUT
        halt
|})

let int_avg =
  mk "intAVG" "Signed average of 16 input samples"
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 7) in
      (words ~state ~base:input_base ~count:16 ~mask:0x0FFF (), 0))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  mov #0x0400, sp
        clr r4               ; sum
        clr r5               ; index (bytes)
aloop:  mov IN(r5), r6
        add r6, r4
        incd r5
        cmp #32, r5
        jlo aloop
        rra r4               ; /16 (arithmetic)
        rra r4
        rra r4
        rra r4
        mov r4, &OUT
        mov r4, &GPIO_OUT
        halt
|})

(* 4-tap FIR with constant coefficients {3,5,3,1}: the immediate
   operand constraints keep most multiplier op1 bits at constant 0
   (the paper's intFilt observation). *)
let int_filt =
  mk "intFilt" "4-tap FIR filter over 16 samples (hardware MAC)"
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 11) in
      (words ~state ~base:input_base ~count:16 ~mask:0x03FF (), 0))
    ~result_addrs:[ output_base; output_base + 2; output_base + 24 ]
    (src
       {|
start:  mov #0x0400, sp
        mov #6, r4           ; n (byte offset), first full window
floop:  mov r4, r5
        and #0x001e, r5
        mov #3, &MPY         ; c0, clears accumulator via plain MPY
        mov IN(r5), &OP2
        sub #2, r5
        and #0x001e, r5
        mov #5, &MAC         ; c1
        mov IN(r5), &OP2
        sub #2, r5
        and #0x001e, r5
        mov #3, &MAC         ; c2
        mov IN(r5), &OP2
        sub #2, r5
        and #0x001e, r5
        mov #1, &MAC         ; c3
        mov IN(r5), &OP2
        mov &RESLO, r6
        mov r4, r7
        sub #6, r7
        and #0x001e, r7
        mov r6, OUT(r7)
        incd r4
        cmp #32, r4
        jlo floop
        mov r6, &GPIO_OUT
        halt
|})

(* Same instruction multiset as intFilt, different schedule: the
   coefficient writes happen in a different order (so different MAC /
   MPY interleaving), loop bookkeeping is hoisted differently, and the
   roles of registers are permuted.  Still a valid halting program. *)
let scrambled_int_filt =
  mk "scrambled-intFilt" "intFilt with the instruction schedule scrambled"
    ~group:Synthetic
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 11) in
      (words ~state ~base:input_base ~count:16 ~mask:0x03FF (), 0))
    ~result_addrs:[ output_base; output_base + 2; output_base + 24 ]
    (src
       {|
start:  mov #0x0400, sp
        mov #6, r7           ; n (byte offset)
floop:  mov r7, r6
        sub #6, r6
        and #0x001e, r6      ; output index, computed up front
        mov r7, r4
        and #0x001e, r4
        mov #1, &MPY         ; c3 first (different coefficient order)
        sub #6, r4
        and #0x001e, r4
        mov IN(r4), &OP2
        add #2, r4
        and #0x001e, r4
        mov #3, &MAC         ; c2
        mov IN(r4), &OP2
        add #2, r4
        and #0x001e, r4
        mov #5, &MAC         ; c1
        mov IN(r4), &OP2
        add #2, r4
        and #0x001e, r4
        mov #3, &MAC         ; c0
        mov IN(r4), &OP2
        mov &RESLO, r5
        mov r5, OUT(r6)
        incd r7
        cmp #32, r7
        jlo floop
        mov r5, &GPIO_OUT
        halt
|})

let mult =
  mk "mult" "Unsigned 16x16 multiply of two inputs (hardware multiplier)"
    ~input_ranges:[ (input_base, input_base + 3) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 23) in
      ([ (input_base, rand16 ~state); (input_base + 2, rand16 ~state) ], 0))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
start:  mov #0x0400, sp
        ; three products, exercising the full datapath
        mov &IN, &MPY
        mov &IN+2, &OP2
        mov &RESLO, r4
        mov &RESHI, r5
        mov &IN+2, &MAC      ; accumulate square of second input
        mov &IN+2, &OP2
        mov &RESLO, r6
        mov &RESHI, r7
        mov r4, &OUT
        mov r5, &OUT+2
        mov r6, &OUT+4
        mov r7, &OUT+6
        mov r6, &GPIO_OUT
        halt
|})

let rle =
  mk "rle" "Run-length encoder over 16 input bytes"
    ~input_ranges:[ (input_base, input_base + 15) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 5) in
      (* runs are likely: draw from a 4-symbol alphabet *)
      ( List.init 8 (fun i ->
            let lo = rand16 ~state land 0x0303 in
            (input_base + (2 * i), lo)),
        0 ))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
start:  mov #0x0400, sp
        clr r4               ; input byte index
        clr r5               ; output byte offset
        mov.b IN(r4), r6     ; current symbol
        inc r4
        mov #1, r7           ; run length
rloop:  cmp #16, r4
        jhs rdone
        mov r4, r15
        and #0x000f, r15
        mov.b IN(r15), r9
        inc r4
        cmp r9, r6
        jne rflush
        inc r7
        jmp rloop
rflush: mov r5, r15
        and #0x001e, r15     ; bound the output pointer
        mov.b r6, OUT(r15)
        inc r15
        and #0x001f, r15
        mov.b r7, OUT(r15)
        incd r5
        mov r9, r6
        mov #1, r7
        jmp rloop
rdone:  mov r5, r15
        and #0x001e, r15
        mov.b r6, OUT(r15)
        inc r15
        and #0x001f, r15
        mov.b r7, OUT(r15)
        incd r5
        mov r5, &GPIO_OUT    ; encoded length (bytes)
        halt
|})

let t_hold =
  mk "tHold" "Digital threshold detector over 16 samples"
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 31) in
      (words ~state ~base:input_base ~count:16 ~mask:0x0FFF (), 0))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
        .equ THRESH, 0x0800
start:  mov #0x0400, sp
        clr r4               ; count above threshold
        clr r5               ; index
        clr r8               ; longest run above
        clr r9               ; current run
tloop:  mov IN(r5), r6
        cmp #THRESH, r6
        jlo below
        inc r4
        inc r9
        cmp r8, r9
        jlo tnext
        mov r9, r8
        jmp tnext
below:  clr r9
tnext:  incd r5
        cmp #32, r5
        jlo tloop
        mov r4, &OUT
        mov r8, &OUT+2
        mov r4, &GPIO_OUT
        halt
|})

let tea8 =
  mk "tea8" "TEA block cipher, 8 rounds, 64-bit block (32-bit software arithmetic)"
    ~input_ranges:[ (input_base, input_base + 7) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 41) in
      (words ~state ~base:input_base ~count:4 (), 0))
    ~result_addrs:[ output_base; output_base + 2; output_base + 4; output_base + 6 ]
    (src
       {|
        .equ ROUNDS, 0x03c0
        ; key schedule constants (immutable key)
        .equ K0LO, 0x316c
        .equ K0HI, 0xa341
        .equ K1LO, 0x2d90
        .equ K1HI, 0xc801
        .equ K2LO, 0xe3e1
        .equ K2HI, 0xd23c
        .equ K3LO, 0x9a8d
        .equ K3HI, 0x1b55
start:  mov #0x0400, sp
        mov &IN, r4          ; v0 lo
        mov &IN+2, r5        ; v0 hi
        mov &IN+4, r6        ; v1 lo
        mov &IN+6, r7        ; v1 hi
        clr r8               ; sum lo
        clr r9               ; sum hi
        mov #8, &ROUNDS
round:  add #0x79b9, r8      ; sum += delta (0x9e3779b9)
        addc #0x9e37, r9
        ; --- v0 += ((v1<<4)+k0) ^ (v1+sum) ^ ((v1>>5)+k1) ---
        mov r6, r10          ; t = v1
        mov r7, r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11              ; t = v1 << 4
        add #K0LO, r10
        addc #K0HI, r11
        mov r6, r12          ; u = v1 + sum
        mov r7, r13
        add r8, r12
        addc r9, r13
        xor r12, r10
        xor r13, r11
        mov r6, r14          ; w = v1 >> 5 (logical)
        mov r7, r15
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        add #K1LO, r14
        addc #0xc801, r15
        xor r14, r10
        xor r15, r11
        add r10, r4
        addc r11, r5
        ; --- v1 += ((v0<<4)+k2) ^ (v0+sum) ^ ((v0>>5)+k3) ---
        mov r4, r10
        mov r5, r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        add #K2LO, r10
        addc #K2HI, r11
        mov r4, r12
        mov r5, r13
        add r8, r12
        addc r9, r13
        xor r12, r10
        xor r13, r11
        mov r4, r14
        mov r5, r15
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        clrc
        rrc r15
        rrc r14
        add #K3LO, r14
        addc #K3HI, r15
        xor r14, r10
        xor r15, r11
        add r10, r6
        addc r11, r7
        dec &ROUNDS
        jnz round
        mov r4, &OUT
        mov r5, &OUT+2
        mov r6, &OUT+4
        mov r7, &OUT+6
        mov r4, &GPIO_OUT
        halt
|})

(* ------------------------------------------------------------------ *)
(* EEMBC-class benchmarks                                               *)

(* Branch-free signed Q7 multiply macro: r12 = (r12 * r13) >> 7,
   clobbers r14/r15.  Inlined at each use so the execution-tree
   explorer never merges unrelated call sites. *)
let smul_q7 =
  {|
        mov r12, &MPY
        mov r13, &OP2
        mov r12, r14
        rla r14
        subc r14, r14        ; 0xffff when r12 >= 0
        inv r14              ; mask: r12 < 0
        and r13, r14         ; correction b
        mov r13, r15
        rla r15
        subc r15, r15
        inv r15
        and r12, r15         ; correction a
        mov &RESHI, r13
        sub r14, r13
        sub r15, r13
        mov &RESLO, r12
        rra r13
        rrc r12
        rra r13
        rrc r12
        rra r13
        rrc r12
        rra r13
        rrc r12
        rra r13
        rrc r12
        rra r13
        rrc r12
        rra r13
        rrc r12
|}

let fft =
  mk "FFT" "8-point radix-2 fixed-point FFT (Q7 twiddles)" ~group:Eembc
    ~input_ranges:[ (input_base, input_base + 15) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 77) in
      ( List.init 8 (fun i ->
            (input_base + (2 * i), rand16 ~state land 0x03FF)),
        0 ))
    ~result_addrs:
      (List.init 8 (fun i -> output_base + (2 * i)))
    (src
       (Printf.sprintf
          {|
        .equ RE, 0x0340      ; working arrays
        .equ IM, 0x0360
        .equ HALFB, 0x03c0   ; loop state spilled to RAM
        .equ TWMUL, 0x03c2
        .equ GBASE, 0x03c4
        .equ MOFF, 0x03c6
        .equ WR, 0x03c8
        .equ WI, 0x03ca
        .equ TR, 0x03cc
        .equ TI, 0x03ce
start:  mov #0x0400, sp
        ; bit-reversed load: re[i] = in[rev(i)], im[i] = 0
        clr r4
brl:    mov r4, r5
        rla r5               ; table byte offset
        mov revtab(r5), r6   ; rev(i) byte offset
        and #0x000e, r6
        mov IN(r6), r7
        mov r4, r5
        rla r5
        and #0x000e, r5
        mov r7, RE(r5)
        clr r8
        mov r8, IM(r5)
        inc r4
        cmp #8, r4
        jlo brl
        ; three stages: half bytes = 2, 4, 8
        ; twiddle byte stride per butterfly word = 16 / half_words
        mov #2, &HALFB
        mov #16, &TWMUL
stage:  clr &GBASE
group:  clr &MOFF
bfly:   ; i = g + m ; j = i + half
        mov &GBASE, r8
        add &MOFF, r8
        and #0x000e, r8      ; i byte offset
        mov r8, r9
        add &HALFB, r9
        and #0x000e, r9      ; j byte offset
        ; twiddle: index = m * twmul (bytes into 4-byte entries)
        mov &MOFF, r10
        mov &TWMUL, r11
        ; multiply small ints by shift-add: twmul in {8,4,2}
        ; offset = m * twmul / ... both are bytes: tw_byte = m*twmul
        ; m in {0,2,4,6}, twmul in {8,4,2}: products <= 48
        clr r12
twmloop: tst r10
        jz twmdone
        add r11, r12
        decd r10
        ; r12 += twmul per 2 bytes of m; so use twmul*1 per word step
        jmp twmloop
twmdone: ; r12 = (m/2)*twmul ; entries are 4 bytes: tw offset = r12*...
        ; twmul was chosen so r12 is already the byte offset into twtab
        and #0x000c, r12
        mov twtab(r12), r13
        mov r13, &WR
        mov r12, r13
        add #2, r13
        and #0x000e, r13
        mov twtab(r13), r13
        mov r13, &WI
        ; tr = (wr*re[j] - wi*im[j]) >> 7
        mov RE(r9), r13
        mov &WR, r12
        %s
        mov r12, &TR
        mov IM(r9), r13
        mov &WI, r12
        %s
        sub r12, &TR
        ; ti = (wr*im[j] + wi*re[j]) >> 7
        mov IM(r9), r13
        mov &WR, r12
        %s
        mov r12, &TI
        mov RE(r9), r13
        mov &WI, r12
        %s
        add r12, &TI
        ; butterfly update
        mov RE(r8), r4
        mov r4, r5
        sub &TR, r5
        mov r5, RE(r9)
        add &TR, r4
        mov r4, RE(r8)
        mov IM(r8), r4
        mov r4, r5
        sub &TI, r5
        mov r5, IM(r9)
        add &TI, r4
        mov r4, IM(r8)
        ; next m
        incd &MOFF
        mov &MOFF, r4
        cmp &HALFB, r4
        jlo bfly
        ; next group
        mov &GBASE, r4
        add &HALFB, r4
        add &HALFB, r4
        mov r4, &GBASE
        cmp #16, r4
        jlo group
        ; next stage
        rla &HALFB
        clrc
        rrc &TWMUL
        mov &HALFB, r4
        cmp #16, r4
        jlo stage
        ; emit magnitude proxies: |re| + |im| per bin
        clr r4
emit:   mov r4, r5
        rla r5
        and #0x000e, r5
        mov RE(r5), r6
        tst r6
        jge epos
        inv r6
        inc r6
epos:   mov IM(r5), r7
        tst r7
        jge eps2
        inv r7
        inc r7
eps2:   add r7, r6
        mov r6, OUT(r5)
        inc r4
        cmp #8, r4
        jlo emit
        mov r6, &GPIO_OUT
        halt
revtab: .word 0, 8, 4, 12, 2, 10, 6, 14
twtab:  .word 127, 0, 90, 0xffa6, 0, 0xff81, 0xffa6, 0xffa6
|}
          smul_q7 smul_q7 smul_q7 smul_q7))

let conv_en =
  mk "convEn" "Convolutional encoder K=3 rate 1/2 over 16 input bits"
    ~group:Eembc
    ~input_ranges:[ (input_base, input_base + 1) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 53) in
      ([ (input_base, rand16 ~state) ], 0))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
start:  mov #0x0400, sp
        mov &IN, r4          ; input bits
        clr r5               ; shift register (2 bits of history)
        clr r6               ; output stream lo (g0 bits)
        clr r7               ; output stream (g1 bits)
        mov #16, r8
cloop:  rla r6               ; make room
        rla r7
        ; current input bit -> r9
        clr r9
        rla r4               ; msb out
        adc r9               ; r9 = bit
        ; g0 = b ^ s0 ^ s1 ; g1 = b ^ s1
        mov r9, r10
        mov r5, r11
        and #1, r11          ; s0
        xor r11, r10
        mov r5, r11
        rra r11
        and #1, r11          ; s1
        xor r11, r10         ; g0
        mov r9, r12
        mov r5, r11
        rra r11
        and #1, r11
        xor r11, r12         ; g1
        bis r10, r6
        bis r12, r7
        ; shift history
        rla r5
        bis r9, r5
        and #3, r5
        dec r8
        jnz cloop
        mov r6, &OUT
        mov r7, &OUT+2
        mov r6, &GPIO_OUT
        halt
|})

let viterbi =
  mk "Viterbi" "Hard-decision Viterbi decoder (K=3, 4 states, 8 symbols)"
    ~group:Eembc
    ~input_ranges:[ (input_base, input_base + 15) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 61) in
      (* 8 received symbol pairs, 2 bits each, possibly noisy *)
      ( List.init 8 (fun i -> (input_base + (2 * i), rand16 ~state land 3)),
        0 ))
    ~result_addrs:[ output_base ]
    (src
       {|
        ; path metrics (old/new) and decision bits in RAM
        .equ PM, 0x0340        ; 4 words
        .equ PMN, 0x0348       ; 4 words
        .equ DEC, 0x0350       ; 8 words of decision nibbles
        .equ SYM, 0x03c0
        .equ TIDX, 0x03c2
        ; branch output table: out[state][bit] 2-bit symbols, K=3 g0=7 g1=5
        ; prev-state transition: next = ((state<<1)|bit) & 3
start:  mov #0x0400, sp
        ; init metrics: state 0 = 0, others = 64
        clr &PM
        mov #64, &PM+2
        mov #64, &PM+4
        mov #64, &PM+6
        clr r11              ; time index (words)
tloop:  mov r11, r15
        rla r15
        and #0x000e, r15
        mov IN(r15), r4
        and #3, r4
        mov r4, &SYM
        ; for each next-state ns in 0..3 compute best predecessor
        clr r5               ; ns
nsloop: ; predecessors of ns: p0 = (ns>>1), p1 = (ns>>1)+2
        mov r5, r6
        rra r6
        and #1, r6           ; p0
        mov r6, r7
        add #2, r7           ; p1
        ; input bit that causes transition = ns & 1
        mov r5, r8
        and #1, r8
        ; expected symbol for (p, bit): table lookup
        ; otab index = p*2 + bit (words)
        mov r6, r9
        rla r9
        add r8, r9
        rla r9
        and #0x000e, r9
        mov otab(r9), r10    ; expected symbol (2 bits)
        xor &SYM, r10
        ; hamming weight of 2-bit value
        mov r10, r12
        and #1, r12
        rra r10
        and #1, r10
        add r12, r10         ; branch metric 0..2
        ; candidate metric from p0
        mov r6, r12
        rla r12
        and #0x0006, r12
        mov PM(r12), r13
        add r10, r13         ; metric via p0
        ; expected symbol for (p1, bit)
        mov r7, r9
        rla r9
        add r8, r9
        rla r9
        and #0x000e, r9
        mov otab(r9), r10
        xor &SYM, r10
        mov r10, r12
        and #1, r12
        rra r10
        and #1, r10
        add r12, r10
        mov r7, r12
        rla r12
        and #0x0006, r12
        mov PM(r12), r14
        add r10, r14         ; metric via p1
        ; select smaller; decision bit = 1 if p1 chosen
        clr r10
        cmp r13, r14         ; m1 - m0
        jhs keep0
        mov r14, r13
        mov #1, r10
keep0:  ; store new metric and decision
        mov r5, r12
        rla r12
        and #0x0006, r12
        mov r13, PMN(r12)
        ; decision bits packed per time step: dec |= r10 << ns
        mov r11, r15
        rla r15
        and #0x000e, r15
        tst r10
        jz nodec
        ; set bit ns of DEC(t)
        mov #1, r9
        tst r5
        jz put
        mov r5, r14
shl:    rla r9
        dec r14
        jnz shl
put:    bis r9, DEC(r15)
nodec:  inc r5
        cmp #4, r5
        jlo nsloop
        ; copy PMN -> PM
        mov &PMN, &PM
        mov &PMN+2, &PM+2
        mov &PMN+4, &PM+4
        mov &PMN+6, &PM+6
        inc r11
        cmp #8, r11
        jlo tloop
        ; pick best final state
        clr r4               ; best state
        mov &PM, r5
        mov #1, r6
best:   mov r6, r7
        rla r7
        and #0x0006, r7
        mov PM(r7), r8
        cmp r5, r8
        jhs nb
        mov r8, r5
        mov r6, r4
nb:     inc r6
        cmp #4, r6
        jlo best
        ; traceback 8 steps, collecting decoded bits msb-first
        clr r9               ; decoded word
        mov #7, r11
tb:     mov r11, r15
        rla r15
        and #0x000e, r15
        mov DEC(r15), r10
        ; decision bit for current state r4
        mov r4, r14
        tst r14
        jz tb0
tbs:    rra r10
        dec r14
        jnz tbs
tb0:    and #1, r10          ; chosen predecessor flag
        ; decoded bit = r4 & 1 ; prev = (r4 >> 1) + 2*flag
        mov r4, r13
        and #1, r13
        ; place bit at position t
        mov r11, r14
        tst r14
        jz place
pl:     rla r13
        dec r14
        jnz pl
place:  bis r13, r9
        mov r4, r13
        rra r13
        and #1, r13
        tst r10
        jz nof
        add #2, r13
nof:    mov r13, r4
        dec r11
        jge tb
        mov r9, &OUT
        mov r9, &GPIO_OUT
        halt
otab:   .word 0, 3, 1, 2, 3, 0, 2, 1
|})

let autocorr =
  mk "autocorr" "Autocorrelation of 16 samples for lags 0..3 (hardware MAC)"
    ~group:Eembc
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 67) in
      (words ~state ~base:input_base ~count:16 ~mask:0x00FF (), 0))
    ~result_addrs:[ output_base; output_base + 2; output_base + 4; output_base + 6 ]
    (src
       {|
start:  mov #0x0400, sp
        clr r4               ; lag (words)
lagloop: ; acc over i = 0 .. 15-lag of x[i]*x[i+lag]
        mov r4, r10
        rla r10              ; lag bytes
        clr r5               ; i bytes
        ; first product via MPY (clears accumulator)
        mov IN(r5), &MPY
        mov r5, r6
        add r10, r6
        and #0x001e, r6
        mov IN(r6), &OP2
        incd r5
acloop: mov r5, r6
        add r10, r6
        cmp #32, r6
        jhs lagdone
        mov r5, r7
        and #0x001e, r7
        mov IN(r7), &MAC
        and #0x001e, r6
        mov IN(r6), &OP2
        incd r5
        jmp acloop
lagdone: mov &RESLO, r8
        mov r4, r9
        rla r9
        and #0x0006, r9
        mov r8, OUT(r9)
        inc r4
        cmp #4, r4
        jlo lagloop
        mov r8, &GPIO_OUT
        halt
|})

(* ------------------------------------------------------------------ *)
(* Unit-test benchmarks                                                 *)

let irq =
  mk "irq" "Interrupt controller test: three external interrupts"
    ~group:Unit_test ~uses_irq:true
    ~irq_pulses:(fun seed -> [ 8 + (seed mod 3); 20; 33 ])
    ~gen_inputs:(fun _ -> ([], 0))
    ~result_addrs:[ output_base; output_base + 2 ]
    (src
       {|
        .irq handler
        .equ COUNT, 0x03c0
start:  mov #0x0400, sp
        clr &COUNT
        mov #1, &IE
        eint
wait:   cmp #3, &COUNT
        jlo wait
        dint
        mov &COUNT, &OUT
        mov &IFG, &OUT+2
        mov &COUNT, &GPIO_OUT
        halt
handler: inc &COUNT
        reti
|})

let dbg =
  mk "dbg" "Debug interface test: PC trace, breakpoint, cycle counters"
    ~group:Unit_test
    ~gen_inputs:(fun _ -> ([], 0))
    ~result_addrs:[ output_base; output_base + 2; output_base + 4; output_base + 6 ]
    (src
       {|
start:  mov #0x0400, sp
        mov #target, &DBGBRK
        mov #3, &DBGCTL      ; trace + breakpoint
        nop
        nop
target: nop
        mov &DBGCTL, r4      ; bit 15: breakpoint hit
        mov &DBGPC, r5       ; last traced pc
        mov &DBGCYCLO, r6
        mov &DBGCYCHI, r7
        mov #6, &CLKCTL      ; enable the clock counter, divide by 4
        mov &CLKCNT, r8
        nop
        mov &CLKCNT, r9
        mov #0, &WDTCTL      ; start watchdog
        nop
        nop
        nop
        mov &WDTCNT, r10
        mov #0x80, &WDTCTL   ; stop watchdog
        mov r4, &OUT
        mov r5, &OUT+2
        mov r6, &OUT+4
        mov r10, &OUT+6
        mov r10, &GPIO_OUT
        halt
|})

let table1 =
  [
    bin_search; div; in_sort; int_avg; int_filt; mult; rle; t_hold; tea8;
    fft; viterbi; conv_en; autocorr; irq; dbg;
  ]

let all = table1 @ [ scrambled_int_filt ]

let find name = List.find (fun b -> String.equal b.name name) all
