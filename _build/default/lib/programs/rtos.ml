let kernel_source =
  {|
        .equ IE, 0x0000
        .equ OUT, 0x0380
        .equ GPIO_OUT, 0x0012
        .equ TCB0, 0x03a0    ; saved SP, task 0
        .equ TCB1, 0x03a2    ; saved SP, task 1
        .equ CURRENT, 0x03a4
        .equ T0CNT, 0x03a6
        .equ T1CNT, 0x03a8
        .irq tick

start:  mov #0x0500, sp      ; task-0 stack
        ; fabricate task 1's initial context at the top of its stack:
        ; [PC][SR][r4..r15], exactly what a tick switch-out leaves
        mov #task1, &0x057e
        mov #8, &0x057c      ; SR with GIE set
        mov #0x0564, &TCB1   ; 0x057c minus 12 register slots
        clr &CURRENT
        clr &T0CNT
        clr &T1CNT
        mov #1, &IE
        eint
        jmp task0

        ; ---- tick handler: full context switch ----
tick:   push r4
        push r5
        push r6
        push r7
        push r8
        push r9
        push r10
        push r11
        push r12
        push r13
        push r14
        push r15
        mov &CURRENT, r4
        rla r4
        and #2, r4           ; bound the TCB index
        mov sp, TCB0(r4)     ; save outgoing SP
        mov &CURRENT, r5
        xor #1, r5
        and #1, r5
        mov r5, &CURRENT
        rla r5
        and #2, r5
        mov TCB0(r5), sp     ; load incoming SP
        pop r15
        pop r14
        pop r13
        pop r12
        pop r11
        pop r10
        pop r9
        pop r8
        pop r7
        pop r6
        pop r5
        pop r4
        reti

        ; ---- task 0: counter ----
task0:  inc &T0CNT
        cmp #60, &T0CNT
        jlo task0
        dint
        mov &T0CNT, &OUT
        mov &T1CNT, &OUT+2
        mov &T0CNT, &GPIO_OUT
        halt

        ; ---- task 1: accumulator ----
task1:  clr r6
t1loop: inc r6
        add r6, &T1CNT
        cmp #40, r6
        jlo t1loop
        dint
        mov &T0CNT, &OUT
        mov &T1CNT, &OUT+2
        mov &T1CNT, &GPIO_OUT
        halt
|}

let kernel =
  {
    Benchmark.name = "rtos";
    description = "Preemptive round-robin RTOS kernel with two tasks";
    group = Benchmark.Unit_test;
    source = kernel_source;
    input_ranges = [];
    gen_inputs = (fun _ -> ([], 0));
    uses_irq = true;
    irq_pulses =
      (fun seed -> [ 15 + (seed mod 5); 60; 105; 150; 195; 240 ]);
    result_addrs = [ 0x0380; 0x0382 ];
  }
