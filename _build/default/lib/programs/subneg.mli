(** Characterization binary for Turing-complete in-field updates
    (paper Section 3.5 / 5.3, Fig 9).

    A [subneg a, b, c] pseudo-instruction (mem[b] -= mem[a]; branch to
    c if the result is negative) is Turing complete, and any program
    written with it consists solely of repeated instances of the same
    instruction — so co-analyzing one subneg interpreter step whose
    operand addresses, operand data and branch decision are all
    unknown (X) covers every possible subneg program.  Operand
    addresses are masked into a RAM window; the "next instruction"
    pointer is likewise masked into the subneg program window. *)

val characterization : Benchmark.t
