(** A small preemptive round-robin RTOS — the FreeRTOS stand-in for
    the system-code study (paper Section 5.4).

    The kernel provides: tick-interrupt-driven preemption (the
    external IRQ is the tick source), full r4-r15 context save/restore
    on per-task stacks, task control blocks holding saved stack
    pointers, and round-robin scheduling between two tasks plus the
    initial thread.  Each task runs a bounded workload and the system
    halts when either finishes, so every concrete run terminates
    regardless of the tick schedule. *)

val kernel : Benchmark.t
(** The kernel with its two built-in demo tasks (a counter task and an
    accumulator task). *)
