let source =
  {|
        .equ OUT, 0x0380
        .equ GPIO_OUT, 0x0012
        .equ PROG, 0x0300    ; subneg triples (a, b, next), unknown
        .equ DATA, 0x0340    ; 32-word operand window, unknown
start:  mov #0x0400, sp
        mov #PROG, r10       ; subneg program counter
        mov #6, r9           ; bounded interpreter steps
sn:     mov @r10+, r4        ; operand-a address (X), masked into DATA
        and #0x003e, r4
        add #DATA, r4
        mov @r10+, r5        ; operand-b address (X)
        and #0x003e, r5
        add #DATA, r5
        mov @r4, r6
        sub r6, 0(r5)        ; mem[b] -= mem[a]
        jge nojmp
        mov @r10, r10        ; taken: next-triple pointer (X)
        and #0x001e, r10
        add #PROG, r10
        jmp next
nojmp:  incd r10             ; skip the branch-target word
        sub #PROG, r10       ; keep the walker inside the window
        and #0x001e, r10
        add #PROG, r10
next:   dec r9
        jnz sn
        mov &DATA, &OUT
        mov &DATA, &GPIO_OUT
        halt
|}

let characterization =
  {
    Benchmark.name = "subneg";
    description = "Turing-complete subneg interpreter characterization";
    group = Benchmark.Synthetic;
    source;
    input_ranges = [ (0x0300, 0x031F); (0x0340, 0x037F) ];
    gen_inputs =
      (fun seed ->
        let state = ref (seed + 501) in
        let prog =
          List.init 16 (fun i -> (0x0300 + (2 * i), Benchmark.rand16 ~state))
        in
        let data =
          List.init 32 (fun i ->
              (0x0340 + (2 * i), Benchmark.rand16 ~state land 0x7FFF))
        in
        (prog @ data, 0));
    uses_irq = false;
    irq_pulses = (fun _ -> []);
    result_addrs = [ 0x0380 ];
  }
