lib/coverage/coverage.mli: Bespoke_programs
