lib/coverage/coverage.ml: Array Bespoke_isa Bespoke_programs Hashtbl List
