(** Gate-level MSP430-class microcontroller generator.

    Produces the full-chip netlist the bespoke flow prunes: a
    multi-cycle 16-bit core implementing the complete ISA of
    {!Bespoke_isa.Isa} plus the peripheral file of
    {!Bespoke_isa.Memmap} (GPIO, halt port, clock module, watchdog,
    debug block, hardware multiplier, single external IRQ).

    The cycle-by-cycle behaviour is the contract documented in
    {!Bespoke_isa.Timing}; the lockstep tests check it against the
    instruction-set simulator.

    {2 Ports}

    Inputs: [pmem_rdata] (16), [dmem_rdata] (16), [gpio_in] (16),
    [irq] (1).

    Outputs: [pmem_addr] (16), [dmem_addr] (16), [dmem_wdata] (16),
    [dmem_wen] (1), [dmem_ben] (2), [dmem_ren] (1), [gpio_out] (16),
    [halt] (1).

    [pmem_addr] carries instruction fetches {e and} data accesses that
    decode into ROM (constant data); [dmem_*] carries RAM traffic
    only.  Peripheral-file traffic never leaves the netlist.  All
    address/write outputs depend only on register outputs, so a
    harness can evaluate them before supplying read data.

    {2 Analysis hooks (named nets)}

    ["pc"], ["state"] (4), ["fetching"] (1: this cycle is an
    instruction fetch with no pending IRQ), ["irq_taken"] (1),
    ["branch_taken"] (1: valid during EXEC of a jump),
    ["branch_target"] (16), ["branch_fallthrough"] (16),
    ["pc_next_seq"] (16: the PC value an instruction boundary will see
    next), ["halted"] (1). *)

val state_fetch : int
(** FSM encoding of the FETCH state, for harnesses watching ["state"]. *)

val build : unit -> Bespoke_netlist.Netlist.t
