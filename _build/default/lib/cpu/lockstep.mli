(** Lockstep execution of the gate-level CPU against the ISS golden
    model, comparing architectural state at every instruction boundary
    and cycle counts against the {!Bespoke_isa.Timing} contract.

    This is the primary correctness oracle for the CPU netlist and,
    with [~netlist], the input-based verification procedure for
    bespoke designs (paper, Section 5.1). *)

type result = {
  instructions : int;
  cycles : int;  (** gate-level cycles, including the reset cycle *)
  gpio_final : int;
  outputs : int list;  (** values written to the GPIO output port *)
}

exception Divergence of string

val run :
  ?netlist:Bespoke_netlist.Netlist.t ->
  ?gpio_in:int ->
  ?irq_pulse_at:int list ->
  ?max_insns:int ->
  Bespoke_isa.Asm.image ->
  result
(** Runs both models to completion (the halt port).  [irq_pulse_at]
    lists instruction indices before which the external IRQ line is
    pulsed high for one instruction.  @raise Divergence on the first
    architectural mismatch, with a diagnostic. *)
