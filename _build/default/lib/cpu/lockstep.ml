module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Iss = Bespoke_isa.Iss
module Asm = Bespoke_isa.Asm
module Memmap = Bespoke_isa.Memmap

type result = {
  instructions : int;
  cycles : int;
  gpio_final : int;
  outputs : int list;
}

exception Divergence of string

let fail fmt = Printf.ksprintf (fun s -> raise (Divergence s)) fmt

let compare_boundary ~insn_idx sys iss =
  let check name expected (got : Bvec.t) =
    match Bvec.to_int got with
    | Some v when v = expected -> ()
    | Some v ->
      fail "insn %d: %s mismatch: ISS %04x, CPU %04x (iss pc %04x)" insn_idx
        name expected v (Iss.pc iss)
    | None ->
      fail "insn %d: %s is unknown in CPU: %s (ISS %04x)" insn_idx name
        (Bvec.to_string got) expected
  in
  for r = 0 to 15 do
    if r <> 3 then
      check (Printf.sprintf "r%d" r) (Iss.reg iss r) (System.reg sys r)
  done;
  (* Cycle agreement: the CPU spends one extra cycle in RESET. *)
  let cpu_cycles = System.cycles sys in
  let iss_cycles = Iss.cycles iss in
  if cpu_cycles <> iss_cycles + 1 then
    fail "insn %d (pc %04x): cycle mismatch: ISS %d (+1 reset), CPU %d"
      insn_idx (Iss.pc iss) iss_cycles cpu_cycles

let compare_final sys iss =
  (* data RAM *)
  for w = 0 to Memmap.ram_words - 1 do
    let addr = Memmap.ram_base + (2 * w) in
    let cpu_v = System.read_ram_word sys addr in
    let iss_v = Iss.read_ram_word iss addr in
    match Bvec.to_int cpu_v with
    | Some v when v = iss_v -> ()
    | Some v -> fail "ram[%04x]: ISS %04x, CPU %04x" addr iss_v v
    | None -> fail "ram[%04x]: unknown in CPU (%s)" addr (Bvec.to_string cpu_v)
  done;
  match Bvec.to_int (System.gpio_out sys) with
  | Some v when v = Iss.gpio_out iss -> ()
  | Some v -> fail "gpio_out: ISS %04x, CPU %04x" (Iss.gpio_out iss) v
  | None -> fail "gpio_out unknown in CPU"

let run ?netlist ?(gpio_in = 0) ?(irq_pulse_at = []) ?(max_insns = 200_000)
    image =
  let iss = Iss.create image in
  Iss.reset iss;
  Iss.set_gpio_in iss gpio_in;
  let sys = System.create ?netlist image in
  System.reset sys;
  System.set_gpio_in_int sys gpio_in;
  (* consume the reset-vector cycle so both models sit at the first
     instruction boundary *)
  (match System.run_to_boundary ~max_cycles:4 sys with
  | `Fetch -> ()
  | `Halted | `Unknown -> fail "did not reach the first fetch");
  let insn_idx = ref 0 in
  let finished = ref false in
  while not !finished do
    if !insn_idx > max_insns then fail "instruction limit exceeded";
    let line = List.mem !insn_idx irq_pulse_at in
    Iss.set_irq_line iss line;
    System.set_irq sys (Bit.of_bool line);
    (* Advance the CPU to its next instruction boundary (or halt). *)
    (match System.run_to_boundary ~max_cycles:100 sys with
    | `Fetch | `Halted -> ()
    | `Unknown -> fail "CPU control state became unknown");
    (* Advance the ISS to match: one instruction, or one interrupt
       entry (which the CPU's IRQ sequence mirrors cycle for cycle). *)
    if System.halted sys then begin
      Iss.step iss;  (* the halting instruction *)
      if not (Iss.halted iss) then fail "CPU halted but ISS did not";
      compare_final sys iss;
      finished := true
    end
    else begin
      Iss.step iss;
      incr insn_idx;
      if Iss.halted iss then fail "ISS halted but CPU did not"
      else compare_boundary ~insn_idx:!insn_idx sys iss
    end
  done;
  {
    instructions = Iss.instructions_retired iss;
    cycles = System.cycles sys;
    gpio_final = Iss.gpio_out iss;
    outputs = List.map snd (Iss.output_trace iss);
  }
