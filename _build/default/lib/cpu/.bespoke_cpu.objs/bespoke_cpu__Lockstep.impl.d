lib/cpu/lockstep.ml: Bespoke_isa Bespoke_logic List Printf System
