lib/cpu/lockstep.mli: Bespoke_isa Bespoke_netlist
