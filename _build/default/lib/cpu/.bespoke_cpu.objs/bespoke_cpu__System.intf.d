lib/cpu/system.mli: Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_sim
