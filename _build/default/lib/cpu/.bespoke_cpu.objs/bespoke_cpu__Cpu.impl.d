lib/cpu/cpu.ml: Array Bespoke_isa Bespoke_rtl List Printf
