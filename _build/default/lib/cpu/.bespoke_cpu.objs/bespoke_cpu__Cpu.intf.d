lib/cpu/cpu.mli: Bespoke_netlist
