lib/cpu/system.ml: Array Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_sim Cpu List Printf
