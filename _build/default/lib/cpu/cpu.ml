module Isa = Bespoke_isa.Isa
module Memmap = Bespoke_isa.Memmap
open Bespoke_rtl.Rtl

(* FSM state encoding (4 bits). *)
let st_fetch = 0
let st_src_ext = 1
let st_src_rd = 2
let st_dst_ext = 3
let st_dst_rd = 4
let st_exec = 5
let st_dst_wr = 6
let st_push_wr = 7
let st_reti_sr = 8
let st_reti_pc = 9
let st_irq_pc = 10
let st_irq_sr = 11
let st_irq_vec = 12
let st_reset = 13

let state_fetch = st_fetch

let c16 n = constant ~width:16 n
let c4 n = constant ~width:4 n

let build () =
  let b = create_builder () in
  (* ---------------- ports ---------------- *)
  let pmem_rdata = input b "pmem_rdata" 16 in
  let dmem_rdata = input b "dmem_rdata" 16 in
  let gpio_in = input b "gpio_in" 16 in
  let irq = input b "irq" 1 in

  (* ---------------- cross-module wires ---------------- *)
  let state = wire 4 in
  let pc = wire 16 in
  let sp = wire 16 in
  let sr = wire 16 in
  let ir = wire 16 in
  let srcv = wire 16 in
  let dstv = wire 16 in
  let mar = wire 16 in
  let res = wire 16 in
  let rf_src = wire 16 in  (* source-port register read *)
  let rf_dst = wire 16 in  (* destination-port register read *)
  let rdata_word = wire 16 in  (* data-space read (periph/RAM/ROM muxed) *)
  let periph_rdata = wire 16 in
  let irq_pending = wire 1 in
  let daddr = wire 16 in
  let dwdata = wire 16 in  (* effective data-space write value *)
  let dwben = wire 2 in
  let data_write = wire 1 in

  let in_state n = state ==: c4 n in
  let s_fetch = in_state st_fetch in
  let s_src_ext = in_state st_src_ext in
  let s_src_rd = in_state st_src_rd in
  let s_dst_ext = in_state st_dst_ext in
  let s_dst_rd = in_state st_dst_rd in
  let s_exec = in_state st_exec in
  let s_dst_wr = in_state st_dst_wr in
  let s_push_wr = in_state st_push_wr in
  let s_reti_sr = in_state st_reti_sr in
  let s_reti_pc = in_state st_reti_pc in
  let s_irq_pc = in_state st_irq_pc in
  let s_irq_sr = in_state st_irq_sr in
  let s_irq_vec = in_state st_irq_vec in
  let s_reset = in_state st_reset in

  (* ---------------- decode (frontend) ---------------- *)
  (* Decode of a raw instruction word [w]; instantiated on the fetched
     word (for next-state selection) and on IR (for everything else). *)
  let decode w =
    let opc = select w ~hi:15 ~lo:12 in
    let fmt_jump = select w ~hi:15 ~lo:13 ==: constant ~width:3 1 in
    let fmt_one = opc ==: c4 1 in
    let fmt_two = bit w 15 |: bit w 14 in
    let sreg2 = select w ~hi:11 ~lo:8 in
    let ad = bit w 7 in
    let bw = bit w 6 in
    let as_ = select w ~hi:5 ~lo:4 in
    let dreg = select w ~hi:3 ~lo:0 in
    let one_code = select w ~hi:9 ~lo:7 in
    let srcreg = mux2 fmt_two dreg sreg2 in
    let sreg_is r = srcreg ==: c4 r in
    let as_is n = as_ ==: constant ~width:2 n in
    let is_reti = fmt_one &: (one_code ==: constant ~width:3 6) in
    let is_push = fmt_one &: (one_code ==: constant ~width:3 4) in
    let is_call = fmt_one &: (one_code ==: constant ~width:3 5) in
    let is_rmw = fmt_one &: ~:(bit one_code 2) in  (* RRC/SWPB/RRA/SXT *)
    (* constant generator *)
    let src_is_cg = sreg_is 3 |: (sreg_is 2 &: bit as_ 1) in
    let src_ext = (as_is 1 &: ~:(sreg_is 3)) |: (as_is 3 &: sreg_is 0) in
    let src_mem =
      (as_is 1 &: ~:(sreg_is 3))
      |: (as_is 2 &: ~:src_is_cg)
      |: (as_is 3 &: ~:(sreg_is 0) &: ~:src_is_cg)
    in
    let writes_dst = ~:(opc ==: c4 0x9) &: ~:(opc ==: c4 0xB) in
    object
      method opc = opc
      method fmt_jump = fmt_jump
      method fmt_one = fmt_one
      method fmt_two = fmt_two
      method ad = ad
      method bw = bw
      method as_ = as_
      method dreg = dreg
      method srcreg = srcreg
      method one_code = one_code
      method is_reti = is_reti
      method is_push = is_push
      method is_call = is_call
      method is_rmw = is_rmw
      method src_is_cg = src_is_cg
      method src_ext = src_ext
      method src_mem = src_mem
      method writes_dst = writes_dst
      method as_is = as_is
      method sreg_is = sreg_is
    end
  in

  (* ---------------- frontend: FSM + IR ---------------- *)
  let d = in_scope b "frontend" (fun () -> decode ir) in
  let fetched = in_scope b "frontend" (fun () -> decode pmem_rdata) in

  in_scope b "frontend" (fun () ->
      (* next state by format, for a fresh decode [dc] *)
      let dst_entry dc =
        mux2 (dc#fmt_two &: dc#ad) (c4 st_exec) (c4 st_dst_ext)
      in
      let after_fetch =
        let dc = fetched in
        let normal =
          mux2 dc#fmt_jump
            (mux2 dc#is_reti
               (mux2 dc#src_ext
                  (mux2 dc#src_mem (dst_entry dc) (c4 st_src_rd))
                  (c4 st_src_ext))
               (c4 st_reti_sr))
            (c4 st_exec)
        in
        mux2 irq_pending normal (c4 st_irq_pc)
      in
      let after_src_ext =
        (* ext word consumed: Sidx goes to SRC_RD, immediate to dst *)
        mux2 d#src_mem (dst_entry d) (c4 st_src_rd)
      in
      let after_exec =
        let mem_wb = d#fmt_two &: d#ad &: d#writes_dst in
        let rmw_mem = d#is_rmw &: d#src_mem in
        mux2
          (d#is_push |: d#is_call)
          (mux2 (mem_wb |: rmw_mem) (c4 st_fetch) (c4 st_dst_wr))
          (c4 st_push_wr)
      in
      let state_next =
        onehot_select
          [
            (s_reset, c4 st_fetch);
            (s_fetch, after_fetch);
            (s_src_ext, after_src_ext);
            (s_src_rd, dst_entry d);
            (s_dst_ext, c4 st_dst_rd);
            (s_dst_rd, c4 st_exec);
            (s_exec, after_exec);
            (s_dst_wr, c4 st_fetch);
            (s_push_wr, c4 st_fetch);
            (s_reti_sr, c4 st_reti_pc);
            (s_reti_pc, c4 st_fetch);
            (s_irq_pc, c4 st_irq_sr);
            (s_irq_sr, c4 st_irq_vec);
            (s_irq_vec, c4 st_fetch);
          ]
          ~default:(c4 st_fetch)
      in
      state <== reg b ~init:st_reset state_next;
      let latch_ir = s_fetch &: ~:irq_pending in
      ir <== reg b ~enable:latch_ir ~init:0 pmem_rdata)
  |> ignore;

  (* ---------------- register file ---------------- *)
  (* ALU results and control signals feed register updates; declare
     the wires they ride on. *)
  let result_regwrite = wire 16 in  (* zero-extended for byte ops *)
  let reg_write_en = wire 1 in  (* EXEC-stage register write *)
  let sr_after_flags = wire 16 in
  let jump_taken = wire 1 in
  let branch_target = wire 16 in

  in_scope b "register_file" (fun () ->
      let autoinc = s_src_rd &: d#as_is 3 in
      let bump r =
        (* byte ops bump by 1 except for PC/SP *)
        let one_byte = d#bw &: ~:(constant ~width:4 r ==: c4 0) &: ~:(constant ~width:4 r ==: c4 1) in
        mux2 one_byte (c16 2) (c16 1)
      in
      let exec_write r = s_exec &: reg_write_en &: (d#dreg ==: c4 r) in
      (* r4..r15 *)
      let gprs =
        List.init 12 (fun i ->
            let r = i + 4 in
            let q = wire 16 in
            let hit_inc = autoinc &: d#sreg_is r in
            let next =
              mux2 (exec_write r) (mux2 hit_inc q (add q (bump r)))
                result_regwrite
            in
            q <== reg b ~init:0 next;
            q)
      in
      (* PC *)
      let pc_plus2 = add pc (c16 2) in
      let pc_next =
        onehot_select
          [
            (s_reset, pmem_rdata);
            (s_fetch &: ~:irq_pending, pc_plus2);
            (s_src_ext, pc_plus2);
            (s_dst_ext, pc_plus2);
            ( s_exec,
              mux2 d#fmt_jump
                (mux2 (reg_write_en &: (d#dreg ==: c4 0)) pc result_regwrite)
                (mux2 jump_taken pc branch_target) );
            (s_push_wr &: d#is_call, srcv);
            (s_reti_pc, rdata_word);
            (s_irq_vec, pmem_rdata);
          ]
          ~default:pc
      in
      pc <== reg b ~init:0 pc_next;
      (* SP *)
      let sp_next =
        onehot_select
          [
            (autoinc &: d#sreg_is 1, add sp (c16 2));
            ( s_exec,
              mux2
                (d#is_push |: d#is_call)
                (mux2 (reg_write_en &: (d#dreg ==: c4 1)) sp result_regwrite)
                (sub sp (c16 2)) );
            (s_irq_pc |: s_irq_sr, sub sp (c16 2));
            (s_reti_sr |: s_reti_pc, add sp (c16 2));
          ]
          ~default:sp
      in
      sp <== reg b ~init:0 sp_next;
      (* SR *)
      let sr_next =
        onehot_select
          [
            ( s_exec,
              mux2 (reg_write_en &: (d#dreg ==: c4 2)) sr_after_flags
                result_regwrite );
            (s_reti_sr, rdata_word);
            (s_irq_sr, zero 16);
          ]
          ~default:sr
      in
      sr <== reg b ~init:0 sr_next;
      (* read ports: index -> value; r3 reads as zero *)
      List.iteri
        (fun i q -> name_net b (Printf.sprintf "r%d" (i + 4)) q)
        gprs;
      let bank = [ pc; sp; sr; zero 16 ] @ gprs in
      let src_idx = mux2 d#fmt_two d#dreg (select ir ~hi:11 ~lo:8) in
      rf_src <== mux src_idx bank;
      rf_dst <== mux d#dreg bank)
  |> ignore;

  (* ---------------- execution unit ---------------- *)
  in_scope b "execution" (fun () ->
      (* effective source operand *)
      let cg_val =
        (* r3: as -> 0,1,2,-1 ; r2: as 2->4, 3->8 *)
        let r3v =
          mux d#as_ [ c16 0; c16 1; c16 2; c16 0xffff ]
        in
        let r2v = mux2 (bit d#as_ 0) (c16 4) (c16 8) in
        mux2 (d#sreg_is 3) r2v r3v
      in
      let src_loaded =
        (* srcv holds the operand: ext-immediate or memory read *)
        d#src_mem |: (d#as_is 3 &: d#sreg_is 0)
      in
      let eff_src_raw =
        mux2 src_loaded (mux2 d#src_is_cg rf_src cg_val) srcv
      in
      let byte_mask v = mux2 d#bw v (uresize (select v ~hi:7 ~lo:0) 16) in
      let eff_src = byte_mask eff_src_raw in
      let eff_dst_raw = mux2 (d#fmt_two &: d#ad) rf_dst dstv in
      let eff_dst = byte_mask eff_dst_raw in

      let flag_c = bit sr 0 in

      (* ---- ALU ---- *)
      let alu =
        in_scope b "alu" (fun () ->
            let opc = d#opc in
            let op_is n = opc ==: c4 n in
            let is_sub = op_is 0x8 |: op_is 0x7 |: op_is 0x9 in
            (* SUB/SUBC/CMP *)
            let b_oper = mux2 is_sub eff_src (byte_mask (~:eff_src)) in
            let cin =
              (* ADD:0 ADDC:C SUB/CMP:1 SUBC:C *)
              mux2 (op_is 0x6 |: op_is 0x7) (mux2 is_sub gnd vdd) flag_c
            in
            let sum, c_word = add_co ~cin eff_dst b_oper in
            (* byte operands are zero-extended, so the bit-7 carry
               appears as sum bit 8 *)
            let c_byte = bit sum 8 in
            let sign_pos v = mux2 d#bw (bit v 15) (bit v 7) in
            let sa = sign_pos eff_dst and sb = sign_pos b_oper in
            let ssum = sign_pos sum in
            let v_add = xnor sa sb &: (ssum ^: sa) in
            (* BCD adder (DADD): chain of decimal digit adders *)
            let bcd_out, bcd_carry =
              let carry = ref flag_c in
              let carries = Array.make 4 flag_c in
              let digits =
                List.init 4 (fun i ->
                    let da = select eff_dst ~hi:((4 * i) + 3) ~lo:(4 * i) in
                    let db = select eff_src ~hi:((4 * i) + 3) ~lo:(4 * i) in
                    let t5v, _ = add_co ~cin:!carry (uresize da 5) (uresize db 5) in
                    let gt9 =
                      bit t5v 4 |: (bit t5v 3 &: (bit t5v 2 |: bit t5v 1))
                    in
                    let adj = add t5v (constant ~width:5 6) in
                    let digit = mux2 gt9 (select t5v ~hi:3 ~lo:0) (select adj ~hi:3 ~lo:0) in
                    carry := gt9;
                    carries.(i) <- gt9;
                    digit)
              in
              (* byte ops take the carry out of digit 1 *)
              (concat digits, mux2 d#bw carries.(3) carries.(1))
            in
            let logic_and = eff_dst &: eff_src in
            let logic_bic = eff_dst &: byte_mask (~:eff_src) in
            let logic_bis = eff_dst |: eff_src in
            let logic_xor = eff_dst ^: eff_src in
            let two_result =
              mux (select opc ~hi:3 ~lo:0)
                [
                  zero 16; zero 16; zero 16; zero 16;
                  eff_src (* MOV *);
                  sum (* ADD *);
                  sum (* ADDC *);
                  sum (* SUBC *);
                  sum (* SUB *);
                  sum (* CMP *);
                  bcd_out (* DADD *);
                  logic_and (* BIT *);
                  logic_bic (* BIC *);
                  logic_bis (* BIS *);
                  logic_xor (* XOR *);
                  logic_and (* AND *);
                ]
            in
            (* one-op unit *)
            let msb_in = mux2 d#bw (bit eff_src 15) (bit eff_src 7) in
            let shr_word = select eff_src ~hi:15 ~lo:1 in
            let rrc_fill = flag_c in
            let rrc_w = concat [ shr_word; rrc_fill ] in
            let rra_w = concat [ shr_word; msb_in ] in
            (* For byte size, bit 7 of the shifted result must be the
               fill bit and bits 15:8 zero. *)
            let fix_byte v fill =
              mux2 d#bw v
                (concat
                   [ select eff_src ~hi:7 ~lo:1; fill; zero 8 ])
            in
            let rrc_res = fix_byte rrc_w rrc_fill in
            let rra_res = fix_byte rra_w msb_in in
            let swpb_res =
              concat [ select eff_src ~hi:15 ~lo:8; select eff_src ~hi:7 ~lo:0 ]
            in
            let sxt_res =
              concat [ select eff_src ~hi:7 ~lo:0; repeat (bit eff_src 7) 8 ]
            in
            let one_result =
              mux (select d#one_code ~hi:1 ~lo:0)
                [ rrc_res; swpb_res; rra_res; sxt_res ]
            in
            let result = mux2 d#fmt_one two_result one_result in
            (* flags *)
            let sized_result =
              mux2 d#bw result (uresize (select result ~hi:7 ~lo:0) 16)
            in
            let z = is_zero sized_result in
            let n = mux2 d#bw (bit result 15) (bit result 7) in
            let c_arith = mux2 d#bw c_word c_byte in
            let is_sxt = d#fmt_one &: (select d#one_code ~hi:1 ~lo:0 ==: constant ~width:2 3) in
            let n_final = mux2 is_sxt n (bit result 15) in
            let z_sxt = is_zero result in
            let z_final = mux2 is_sxt z z_sxt in
            let is_shift = d#fmt_one &: ~:(bit d#one_code 0) in  (* RRC/RRA *)
            let c_logic = ~:z_final in
            let op_is_arith =
              op_is 5 |: op_is 6 |: op_is 7 |: op_is 8 |: op_is 9
            in
            let c_out =
              mux2 d#fmt_one
                (mux2 op_is_arith
                   (mux2 (op_is 0xA) c_logic bcd_carry)
                   c_arith)
                (mux2 is_shift c_logic (bit eff_src 0))
            in
            let v_out =
              mux2 d#fmt_one
                (mux2 op_is_arith
                   (mux2 (op_is 0xE)
                      (constant ~width:1 0)
                      (sign_pos eff_dst &: sign_pos eff_src))
                   v_add)
                gnd
            in
            let flags_write =
              mux2 d#fmt_one
                (d#fmt_two &: ~:(op_is 4) &: ~:(op_is 0xC) &: ~:(op_is 0xD))
                (d#is_rmw
                &: ~:(select d#one_code ~hi:1 ~lo:0 ==: constant ~width:2 1))
            in
            object
              method result = result
              method sized_result = sized_result
              method z = z_final
              method n = n_final
              method c = c_out
              method v = v_out
              method flags_write = flags_write
            end)
      in
      let set_bit v i x =
        let lo = if i = 0 then [] else [ select v ~hi:(i - 1) ~lo:0 ] in
        let hi = if i = 15 then [] else [ select v ~hi:15 ~lo:(i + 1) ] in
        concat (lo @ [ x ] @ hi)
      in
      let sr1 = set_bit sr 0 alu#c in
      let sr2 = set_bit sr1 1 alu#z in
      let sr3 = set_bit sr2 2 alu#n in
      let sr4 = set_bit sr3 8 alu#v in
      sr_after_flags <== mux2 alu#flags_write sr sr4;
      (* byte results zero-extend into registers *)
      result_regwrite <== alu#sized_result;
      reg_write_en
      <== ((d#fmt_two &: d#writes_dst &: ~:(d#ad))
          |: (d#is_rmw &: d#as_is 0));
      (* jump condition *)
      let z = bit sr 1 and c = bit sr 0 and n = bit sr 2 and v = bit sr 8 in
      let cond = select ir ~hi:12 ~lo:10 in
      jump_taken
      <== (d#fmt_jump
          &: mux cond
               [ ~:z; z; ~:c; c; n; xnor n v; n ^: v; vdd ]);
      let off = sresize (select ir ~hi:9 ~lo:0) 16 in
      branch_target <== add pc (sll_const off 1);
      (* source address for SRC_RD: indexed uses MAR, @Rn/@Rn+ use the
         register directly *)
      let src_addr = mux2 (d#as_is 1) rf_src mar in
      let read_byte =
        mux2 (bit daddr 0) (select rdata_word ~hi:7 ~lo:0)
          (select rdata_word ~hi:15 ~lo:8)
      in
      let sized_read = mux2 d#bw rdata_word (uresize read_byte 16) in
      let srcv_next =
        onehot_select
          [
            (s_src_ext &: ~:(d#src_mem), pmem_rdata);  (* immediate *)
            (s_src_rd, sized_read);
            (s_exec, eff_src);  (* stash operand for PUSH/CALL *)
          ]
          ~default:srcv
      in
      srcv <== reg b ~init:0 srcv_next;
      dstv <== reg b ~enable:s_dst_rd ~init:0 sized_read;
      (* MAR: indexed source at SRC_EXT, latched effective address at
         SRC_RD (for RMW writeback), destination address at DST_EXT *)
      let src_base =
        let r = select ir ~hi:11 ~lo:8 in
        let r = mux2 d#fmt_two (select ir ~hi:3 ~lo:0) r in
        mux2 (r ==: c4 2) (mux2 (r ==: c4 0) rf_src (add pc (c16 2)))
          (zero 16)
      in
      let dst_base =
        mux2 (d#dreg ==: c4 2)
          (mux2 (d#dreg ==: c4 0) rf_dst (add pc (c16 2)))
          (zero 16)
      in
      let mar_next =
        onehot_select
          [
            (s_src_ext &: d#src_mem, add src_base pmem_rdata);
            (s_src_rd, src_addr);
            (s_dst_ext, add dst_base pmem_rdata);
          ]
          ~default:mar
      in
      mar <== reg b ~init:0 mar_next;
      (* result register *)
      let res_next =
        mux2 d#is_call alu#result pc
      in
      res <== reg b ~enable:s_exec ~init:0
               (mux2 d#is_push res_next eff_src);
      (* data-space address *)
      daddr
      <== onehot_select
            [
              (s_src_rd, src_addr);
              (s_dst_rd |: s_dst_wr, mar);
              (s_push_wr, sp);
              (s_reti_sr |: s_reti_pc, sp);
              (s_irq_pc |: s_irq_sr, sub sp (c16 2));
            ]
            ~default:mar;
      (* write value and byte enables *)
      let wr_byte = d#bw &: s_dst_wr in
      let res_byte = select res ~hi:7 ~lo:0 in
      dwdata
      <== onehot_select
            [
              (s_dst_wr, mux2 wr_byte res (concat [ res_byte; res_byte ]));
              (s_push_wr, res);
              (s_irq_pc, pc);
              (s_irq_sr, sr);
            ]
            ~default:res;
      dwben
      <== mux2 wr_byte (ones 2)
            (mux2 (bit daddr 0) (constant ~width:2 1) (constant ~width:2 2));
      data_write <== (s_dst_wr |: s_push_wr |: s_irq_pc |: s_irq_sr))
  |> ignore;

  (* ---------------- memory backbone ---------------- *)
  let halted = wire 1 in
  in_scope b "mem_backbone" (fun () ->
      let in_periph = select daddr ~hi:15 ~lo:9 ==: constant ~width:7 0 in
      let in_ram =
        (daddr >=: c16 Memmap.ram_base)
        &: (daddr <: c16 (Memmap.ram_base + Memmap.ram_bytes))
      in
      let in_rom = select daddr ~hi:15 ~lo:12 ==: c4 0xF in
      let data_read = s_src_rd |: s_dst_rd |: s_reti_sr |: s_reti_pc in
      (* instruction-space address: fetch/ext states use PC, the IRQ
         vector state uses the vector address, ROM data reads use the
         data address *)
      let fetch_like = s_fetch |: s_src_ext |: s_dst_ext in
      let pmem_addr =
        onehot_select
          [
            (fetch_like, pc);
            (s_reset, c16 Memmap.reset_vector);
            (s_irq_vec, c16 Memmap.irq_vector);
          ]
          ~default:daddr
      in
      output b "pmem_addr" pmem_addr;
      rdata_word
      <== mux2 in_periph
            (mux2 in_ram (mux2 in_rom (zero 16) pmem_rdata) dmem_rdata)
            periph_rdata;
      output b "dmem_addr" daddr;
      output b "dmem_wdata" dwdata;
      output b "dmem_ben" dwben;
      output b "dmem_wen" (data_write &: in_ram);
      output b "dmem_ren" (data_read &: in_ram))
  |> ignore;

  (* ---------------- peripherals ---------------- *)
  let pwrite = wire 1 in
  pwrite
  <== (data_write &: (select daddr ~hi:15 ~lo:9 ==: constant ~width:7 0));
  (* Address decode lives in the memory backbone (not inside the
     peripheral that uses it): decode gates toggle with every bus
     transaction, and keeping them out of the peripheral modules lets
     a never-written peripheral be removed wholesale. *)
  let addr_is a =
    at_scope b "mem_backbone" (fun () ->
        select daddr ~hi:15 ~lo:1 ==: constant ~width:15 (a lsr 1))
  in
  let strobe a = at_scope b "mem_backbone" (fun () -> pwrite &: addr_is a) in
  (* Byte-lane merge against the current register value.  The write
     bus is isolated per register by its own strobe (AND gating), so
     a peripheral that is never written never sees the bus toggle —
     its whole module can then be pruned, as in the paper. *)
  let lane_merge ~strobe:stb cur =
    let gated = repeat stb 16 &: dwdata in
    concat
      [
        mux2 (bit dwben 0) (select cur ~hi:7 ~lo:0) (select gated ~hi:7 ~lo:0);
        mux2 (bit dwben 1) (select cur ~hi:15 ~lo:8) (select gated ~hi:15 ~lo:8);
      ]
  in
  let periph_reg ?(width = 16) addr =
    let q = wire width in
    let stb = strobe addr in
    let merged = select (lane_merge ~strobe:stb (uresize q 16)) ~hi:(width - 1) ~lo:0 in
    q <== reg b ~enable:stb ~init:0 merged;
    q
  in

  (* sfr: interrupt enable/flag, halt flag *)
  let ie, ifg =
    in_scope b "sfr" (fun () ->
        let ie = periph_reg Memmap.sfr_ie in
        let ifg = wire 16 in
        let ifg_merged = lane_merge ~strobe:(strobe Memmap.sfr_ifg) ifg in
        let ifg0_next =
          mux2 s_irq_sr
            (mux2 (strobe Memmap.sfr_ifg) (bit ifg 0 |: irq) (bit ifg_merged 0))
            gnd
        in
        let ifg_hi_next =
          mux2 (strobe Memmap.sfr_ifg)
            (select ifg ~hi:15 ~lo:1)
            (select ifg_merged ~hi:15 ~lo:1)
        in
        ifg <== reg b ~init:0 (concat [ ifg0_next; ifg_hi_next ]);
        let halt_next = halted |: (strobe Memmap.sim_halt) in
        halted <== reg b ~init:0 halt_next;
        output b "halt" halted;
        (ie, ifg))
  in
  irq_pending <== (bit sr 3 &: bit ie 0 &: bit ifg 0);

  (* gpio *)
  let gpio_out =
    in_scope b "gpio" (fun () ->
        let q = periph_reg Memmap.gpio_out in
        output b "gpio_out" q;
        name_net b "gpio_wr" (strobe Memmap.gpio_out);
        q)
  in

  (* clock module: control + 20-bit divided counter; the counter only
     runs when enabled (ctl bit 2), so an application that never
     starts it leaves the whole module quiescent *)
  let clk_ctl, clk_view =
    in_scope b "clock_module" (fun () ->
        let ctl = periph_reg Memmap.clk_ctl in
        let cnt = wire 20 in
        let running = bit ctl 2 &: ~:s_reset in
        cnt
        <== reg b ~init:0
              (mux2 running cnt (add cnt (constant ~width:20 1)));
        let view =
          mux (select ctl ~hi:1 ~lo:0)
            [
              select cnt ~hi:15 ~lo:0;
              select cnt ~hi:16 ~lo:1;
              select cnt ~hi:17 ~lo:2;
              select cnt ~hi:18 ~lo:3;
            ]
        in
        (ctl, view))
  in

  (* watchdog *)
  let wdt_ctl, wdt_cnt =
    in_scope b "watchdog" (fun () ->
        let ctl = wire 16 in
        ctl
        <== reg b ~enable:(strobe Memmap.wdt_ctl) ~init:0x80
              (lane_merge ~strobe:(strobe Memmap.wdt_ctl) ctl);
        let cnt = wire 16 in
        let running = ~:(bit ctl 7) in
        cnt
        <== reg b ~init:0
              (mux2 (strobe Memmap.wdt_ctl)
                 (mux2 running cnt (add cnt (c16 1)))
                 (zero 16));
        (ctl, cnt))
  in

  (* debug block *)
  let dbg_ctl, dbg_pc, dbg_brk, dbg_cyc =
    in_scope b "dbg" (fun () ->
        let ctl = wire 16 in
        let brk = periph_reg Memmap.dbg_brk in
        let at_fetch = s_fetch &: ~:irq_pending in
        let brk_hit = at_fetch &: bit ctl 1 &: (pc ==: brk) in
        let ctl_merged = lane_merge ~strobe:(strobe Memmap.dbg_ctl) ctl in
        let ctl_next =
          mux2 (strobe Memmap.dbg_ctl)
            (mux2 brk_hit ctl (ctl |: c16 0x8000))
            ctl_merged
        in
        ctl <== reg b ~init:0 ctl_next;
        let pcs = wire 16 in
        pcs <== reg b ~enable:(at_fetch &: bit ctl 0) ~init:0 pc;
        (* the cycle counter runs only while tracing is enabled *)
        let cyc = wire 32 in
        let counting = bit ctl 0 &: ~:s_reset in
        cyc
        <== reg b ~init:0
              (mux2 counting cyc (add cyc (constant ~width:32 1)));
        (ctl, pcs, brk, cyc))
  in

  (* hardware multiplier *)
  let mpy_op1, mpy_reslo, mpy_reshi =
    in_scope b "multiplier" (fun () ->
        let op1 = wire 16 in
        let op1_strobe = strobe Memmap.mpy_op1 |: strobe Memmap.mpy_mac in
        op1 <== reg b ~enable:op1_strobe ~init:0 (lane_merge ~strobe:op1_strobe op1);
        let mac_mode = wire 1 in
        mac_mode
        <== reg b ~enable:op1_strobe ~init:0
              (uresize (strobe Memmap.mpy_mac) 1);
        let reslo = wire 16 and reshi = wire 16 in
        let op2val = lane_merge ~strobe:(strobe Memmap.mpy_op2) (zero 16) in
        (* with ben=11 this is just dwdata; byte writes merge with 0 *)
        let product = op1 *: op2val in
        let acc = concat [ reslo; reshi ] in
        let acc_in = mux2 mac_mode (zero 32) acc in
        let total = add acc_in product in
        let trigger = strobe Memmap.mpy_op2 in
        let reslo_next =
          onehot_select
            [
              (trigger, select total ~hi:15 ~lo:0);
              (strobe Memmap.mpy_reslo, lane_merge ~strobe:(strobe Memmap.mpy_reslo) reslo);
            ]
            ~default:reslo
        in
        let reshi_next =
          onehot_select
            [
              (trigger, select total ~hi:31 ~lo:16);
              (strobe Memmap.mpy_reshi, lane_merge ~strobe:(strobe Memmap.mpy_reshi) reshi);
            ]
            ~default:reshi
        in
        reslo <== reg b ~init:0 reslo_next;
        reshi <== reg b ~init:0 reshi_next;
        (op1, reslo, reshi))
  in

  (* peripheral read mux *)
  periph_rdata
  <== onehot_select
        [
          (addr_is Memmap.sfr_ie, ie);
          (addr_is Memmap.sfr_ifg, ifg);
          (addr_is Memmap.gpio_in, gpio_in);
          (addr_is Memmap.gpio_out, gpio_out);
          (addr_is Memmap.clk_ctl, clk_ctl);
          (addr_is Memmap.clk_cnt, clk_view);
          (addr_is Memmap.wdt_ctl, wdt_ctl);
          (addr_is Memmap.wdt_cnt, wdt_cnt);
          (addr_is Memmap.dbg_ctl, dbg_ctl);
          (addr_is Memmap.dbg_pc, dbg_pc);
          (addr_is Memmap.dbg_brk, dbg_brk);
          (addr_is Memmap.dbg_cyc_lo, select dbg_cyc ~hi:15 ~lo:0);
          (addr_is Memmap.dbg_cyc_hi, select dbg_cyc ~hi:31 ~lo:16);
          (addr_is Memmap.mpy_op1, mpy_op1);
          (addr_is Memmap.mpy_mac, mpy_op1);
          (addr_is Memmap.mpy_reslo, mpy_reslo);
          (addr_is Memmap.mpy_reshi, mpy_reshi);
        ]
        ~default:(zero 16);

  (* ---------------- analysis hooks ---------------- *)
  name_net b "pc" pc;
  name_net b "state" state;
  name_net b "ir" ir;
  name_net b "sp" sp;
  name_net b "sr" sr;
  name_net b "fetching" (s_fetch &: ~:irq_pending);
  name_net b "insn_boundary" s_fetch;
  name_net b "irq_pending" irq_pending;
  name_net b "irq_flag" (bit ifg 0);
  name_net b "irq_enable" (bit ie 0);
  name_net b "branch_taken" jump_taken;
  name_net b "branch_target" branch_target;
  name_net b "branch_fallthrough" pc;
  name_net b "halted" halted;
  name_net b "exec_jump" (in_state st_exec &: d#fmt_jump);
  synthesize b
