(** Mutant generation for the in-field-update study (paper Section
    5.3, Tables 4/5, Fig 14) — the Milu stand-in.

    Mutants emulate minor bug-fix updates by changing exactly one
    instruction, in the paper's three classes:

    - {b Type I} (conditional-operator): a forward conditional branch
      gets its condition inverted or weakened (jeq<->jne, jlo<->jhs,
      jl<->jge, jlo<->jeq, ...);
    - {b Type II} (computation-operator): an arithmetic/logical
      operator is replaced (add<->sub, addc<->subc, and<->bis,
      bis<->xor, inc<->dec, rla<->rra, ...);
    - {b Type III} (loop-conditional-operator): the same condition
      swaps applied to backward (loop-closing) branches. *)

type mutant_type = Conditional | Computation | Loop_conditional

type mutant = {
  id : int;
  mtype : mutant_type;
  line : int;  (** 1-based source line mutated *)
  original : string;  (** original mnemonic *)
  replacement : string;
  source : string;  (** full mutated assembly *)
}

val type_name : mutant_type -> string

val mutants : Bespoke_programs.Benchmark.t -> mutant list
(** All single-instruction mutants of the benchmark that still
    assemble to the same layout. *)

val to_benchmark :
  Bespoke_programs.Benchmark.t -> mutant -> Bespoke_programs.Benchmark.t
(** The mutant as a runnable/analyzable benchmark (same inputs and
    result addresses as the base program). *)

val count_by_type : mutant list -> (mutant_type * int) list
