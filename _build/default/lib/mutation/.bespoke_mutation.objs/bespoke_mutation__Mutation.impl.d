lib/mutation/mutation.ml: Bespoke_isa Bespoke_programs Hashtbl List Printf String
