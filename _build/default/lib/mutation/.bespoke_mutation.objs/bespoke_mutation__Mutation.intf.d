lib/mutation/mutation.mli: Bespoke_programs
