module Benchmark = Bespoke_programs.Benchmark

type mutant_type = Conditional | Computation | Loop_conditional

type mutant = {
  id : int;
  mtype : mutant_type;
  line : int;
  original : string;
  replacement : string;
  source : string;
}

let type_name = function
  | Conditional -> "I (conditional)"
  | Computation -> "II (computation)"
  | Loop_conditional -> "III (loop conditional)"

(* Condition swaps (apply to both forward and backward branches). *)
let cond_swaps =
  [
    ("jeq", [ "jne" ]);
    ("jz", [ "jnz" ]);
    ("jne", [ "jeq" ]);
    ("jnz", [ "jz" ]);
    ("jlo", [ "jhs"; "jne" ]);
    ("jhs", [ "jlo" ]);
    ("jnc", [ "jc" ]);
    ("jc", [ "jnc" ]);
    ("jl", [ "jge" ]);
    ("jge", [ "jl" ]);
    ("jn", [ "jge" ]);
  ]

(* Computation-operator swaps; both mnemonics must keep the encoding
   length identical, which all of these do. *)
let comp_swaps =
  [
    ("add", [ "sub"; "xor" ]);
    ("sub", [ "add" ]);
    ("addc", [ "subc" ]);
    ("subc", [ "addc" ]);
    ("and", [ "bis" ]);
    ("bis", [ "xor" ]);
    ("xor", [ "bis" ]);
    ("inc", [ "dec" ]);
    ("dec", [ "inc" ]);
    ("incd", [ "decd" ]);
    ("decd", [ "incd" ]);
    ("rla", [ "rra" ]);
    ("rra", [ "rla" ]);
  ]

(* Very small-footprint line scanner: label / mnemonic / operands. *)
let split_line raw =
  let no_comment =
    match String.index_opt raw ';' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let text = no_comment in
  let label_end =
    match String.index_opt text ':' with
    | Some i
      when String.for_all
             (fun c ->
               (c >= 'a' && c <= 'z')
               || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9')
               || c = '_' || c = '.')
             (String.trim (String.sub text 0 i))
           && String.trim (String.sub text 0 i) <> "" ->
      Some i
    | _ -> None
  in
  let body =
    match label_end with
    | Some i -> String.sub text (i + 1) (String.length text - i - 1)
    | None -> text
  in
  let body = String.trim body in
  if body = "" then None
  else
    match String.index_opt body ' ' with
    | None -> Some (body, "")
    | Some i ->
      Some
        ( String.sub body 0 i,
          String.trim (String.sub body (i + 1) (String.length body - i - 1)) )

let label_def_lines source =
  let tbl = Hashtbl.create 32 in
  List.iteri
    (fun i raw ->
      let text =
        match String.index_opt raw ';' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match String.index_opt text ':' with
      | Some j ->
        let l = String.trim (String.sub text 0 j) in
        if l <> "" then Hashtbl.replace tbl l (i + 1)
      | None -> ())
    (String.split_on_char '\n' source);
  tbl

let replace_mnemonic raw old_m new_m =
  (* replace the first standalone occurrence of old_m *)
  let n = String.length raw and k = String.length old_m in
  let is_sep c = c = ' ' || c = '\t' || c = ':' in
  let rec find i =
    if i + k > n then None
    else if
      String.sub raw i k = old_m
      && (i = 0 || is_sep raw.[i - 1])
      && (i + k = n || is_sep raw.[i + k] || raw.[i + k] = '.')
    then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    Some (String.sub raw 0 i ^ new_m ^ String.sub raw (i + k) (n - i - k))

let mutants (b : Benchmark.t) =
  let lines = String.split_on_char '\n' b.Benchmark.source in
  let labels = label_def_lines b.Benchmark.source in
  let out = ref [] in
  let next_id = ref 0 in
  let add mtype line_no raw old_m new_m =
    match replace_mnemonic raw old_m new_m with
    | None -> ()
    | Some mutated_line ->
      let source =
        String.concat "\n"
          (List.mapi
             (fun i l -> if i + 1 = line_no then mutated_line else l)
             lines)
      in
      (* the mutant must still assemble *)
      (match Bespoke_isa.Asm.assemble source with
      | exception Bespoke_isa.Asm.Error _ -> ()
      | _ ->
        incr next_id;
        out :=
          {
            id = !next_id;
            mtype;
            line = line_no;
            original = old_m;
            replacement = new_m;
            source;
          }
          :: !out)
  in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      match split_line raw with
      | None -> ()
      | Some (mn, args) -> (
        let base =
          match String.index_opt mn '.' with
          | Some d when d > 0 -> String.sub mn 0 d
          | _ -> mn
        in
        match List.assoc_opt base cond_swaps with
        | Some repls ->
          (* backward target = loop conditional *)
          let target = String.trim args in
          let is_loop =
            match Hashtbl.find_opt labels target with
            | Some def_line -> def_line <= line_no
            | None -> false
          in
          let mtype = if is_loop then Loop_conditional else Conditional in
          List.iter (fun r -> add mtype line_no raw base r) repls
        | None -> (
          match List.assoc_opt base comp_swaps with
          | Some repls ->
            List.iter (fun r -> add Computation line_no raw base r) repls
          | None -> ())))
    lines;
  List.rev !out

let to_benchmark (b : Benchmark.t) m =
  {
    b with
    Benchmark.name = Printf.sprintf "%s-mut%d" b.Benchmark.name m.id;
    source = m.source;
  }

let count_by_type ms =
  let count t = List.length (List.filter (fun m -> m.mtype = t) ms) in
  [
    (Conditional, count Conditional);
    (Computation, count Computation);
    (Loop_conditional, count Loop_conditional);
  ]
