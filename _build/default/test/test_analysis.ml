module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Asm = Bespoke_isa.Asm
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory
module System = Bespoke_cpu.System
module Activity = Bespoke_analysis.Activity

let the_netlist = lazy (Bespoke_cpu.Cpu.build ())

let analyze ?(ram_x = []) src =
  let img = Asm.assemble src in
  let sys = System.create ~netlist:(Lazy.force the_netlist) img in
  let config =
    { Activity.default_config with Activity.ram_x_ranges = ram_x }
  in
  (Activity.analyze ~config sys, sys)

let count_exercisable r = Activity.exercisable_count r

let test_straightline () =
  let r, _ =
    analyze {|
start:  mov #0x0280, sp
        mov #5, r4
        add #3, r4
        mov r4, &0x0200
        halt
|}
  in
  Alcotest.(check int) "single path" 1 r.Activity.paths;
  Alcotest.(check int) "halted" 1 r.Activity.halted_paths;
  Alcotest.(check bool) "some gates exercised" true (count_exercisable r > 500)

let test_input_dependent_branch_forks () =
  let r, _ =
    analyze {|
start:  mov #0x0280, sp
        mov &0x0010, r4
        tst r4
        jz zero
        mov #1, &0x0200
        halt
zero:   mov #2, &0x0200
        halt
|}
  in
  Alcotest.(check bool) "forked" true (r.Activity.paths >= 2);
  Alcotest.(check int) "both paths halt" 2 r.Activity.halted_paths

let test_concrete_branch_no_fork () =
  let r, _ =
    analyze {|
start:  mov #0x0280, sp
        mov #1, r4
        tst r4
        jz never
        mov #1, &0x0200
        halt
never:  mov #2, &0x0200
        halt
|}
  in
  Alcotest.(check int) "no fork on a concrete condition" 1 r.Activity.paths

let test_infinite_loop_converges () =
  let r, _ = analyze "start: jmp start\n" in
  Alcotest.(check bool) "converged" true (r.Activity.paths < 5);
  Alcotest.(check int) "nothing halts" 0 r.Activity.halted_paths

let test_input_loop_converges () =
  (* loop with an input-dependent trip count must converge via merging *)
  let r, _ =
    analyze {|
start:  mov #0x0280, sp
        mov &0x0010, r4
loop:   dec r4
        jnz loop
        halt
|}
  in
  Alcotest.(check bool) "converged" true (r.Activity.paths < 50);
  Alcotest.(check bool) "revisits handled" true
    (r.Activity.merges + r.Activity.prunes > 0);
  Alcotest.(check bool) "halting path found" true (r.Activity.halted_paths > 0)

(* The central soundness property: any gate the analysis says can
   never toggle must indeed not toggle in concrete executions with
   arbitrary inputs. *)
let soundness_program =
  {|
start:  mov #0x0280, sp
        mov &0x0300, r4
        and #0x0007, r4
        clr r5
loop:   add r4, r5
        dec r4
        jge loop
        mov r5, &0x0380
        mov r5, &0x0012
        halt
|}

let soundness_report =
  lazy
    (let img = Asm.assemble soundness_program in
     let sys = System.create ~netlist:(Lazy.force the_netlist) img in
     let config =
       {
         Activity.default_config with
         Activity.ram_x_ranges = [ (0x0300, 0x0301) ];
       }
     in
     Activity.analyze ~config sys)

let test_soundness_vs_concrete =
  QCheck.Test.make ~name:"untoggled set holds for every concrete input"
    ~count:25
    QCheck.(int_bound 0xffff)
    (fun input ->
      let img = Asm.assemble soundness_program in
      let r = Lazy.force soundness_report in
      (* concrete run with this input *)
      let sys2 = System.create ~netlist:(Lazy.force the_netlist) img in
      System.reset sys2;
      Memory.load_int (System.ram sys2) ((0x0300 lsr 1) land 0x7ff) input;
      System.set_gpio_in_int sys2 0;
      System.set_irq sys2 Bit.Zero;
      ignore (System.run ~max_cycles:10_000 sys2);
      let toggles = Engine.toggle_counts (System.engine sys2) in
      let ok = ref true in
      Array.iteri
        (fun id c ->
          if c > 0 && not r.Activity.possibly_toggled.(id) then ok := false)
        toggles;
      !ok)

let test_constants_match_reset () =
  let r, sys = analyze "start: mov #0x0280, sp\n halt\n" in
  (* every gate marked untoggled must still hold its recorded constant
     after the run *)
  let eng = System.engine sys in
  let final = Engine.snapshot_values eng in
  let ok = ref true in
  Array.iteri
    (fun id v ->
      if not r.Activity.possibly_toggled.(id) then
        if not (Bit.equal v r.Activity.constant_values.(id)) then ok := false)
    final;
  Alcotest.(check bool) "constants stable" true !ok

let test_gpio_x_marks_input_cone () =
  let with_input, _ =
    analyze {|
start:  mov #0x0280, sp
        mov &0x0010, r4
        mov r4, &0x0380
        halt
|}
  in
  let without, _ =
    analyze {|
start:  mov #0x0280, sp
        mov #0, r4
        mov r4, &0x0380
        halt
|}
  in
  Alcotest.(check bool) "reading the port exercises more gates" true
    (count_exercisable with_input > count_exercisable without)

let test_shadow_detects_wrong_cut () =
  (* cut a gate that IS exercisable and let the shadow comparison (or
     the simulation itself) catch the divergence *)
  let src = {|
start:  mov #0x0280, sp
        mov &0x0010, r4
        add #1, r4
        mov r4, &0x0380
        halt
|} in
  let img = Asm.assemble src in
  let sys = System.create ~netlist:(Lazy.force the_netlist) img in
  let r = Activity.analyze sys in
  let net = Lazy.force the_netlist in
  (* sabotage: also cut 40 gates that provably toggle in a concrete
     run of this very program *)
  let concrete = System.create ~netlist:net img in
  System.reset concrete;
  System.set_gpio_in_int concrete 0x1234;
  System.set_irq concrete Bit.Zero;
  ignore (System.run ~max_cycles:10_000 concrete);
  let live_toggles = Engine.toggle_counts (System.engine concrete) in
  let sabotaged = Array.copy r.Activity.possibly_toggled in
  let cut = ref 0 in
  Array.iteri
    (fun id (g : Bespoke_netlist.Gate.t) ->
      if
        !cut < 40 && sabotaged.(id) && live_toggles.(id) > 2
        && (not (Bespoke_netlist.Gate.is_source g))
        && Netlist.module_of net id = "execution"
      then begin
        sabotaged.(id) <- false;
        incr cut
      end)
    net.Netlist.gates;
  Alcotest.(check bool) "sabotage applied" true (!cut > 0);
  let bad, _ =
    Bespoke_core.Cut.tailor net ~possibly_toggled:sabotaged
      ~constants:r.Activity.constant_values
  in
  let caught =
    try
      let sys1 = System.create ~netlist:net img in
      let sh = System.create ~netlist:bad img in
      ignore (Activity.analyze ~shadow:sh sys1);
      (* the shadow may pass if the sabotage fell on redundant gates;
         input-based checks are the backstop *)
      List.for_all
        (fun gpio ->
          let r1 = Bespoke_cpu.Lockstep.run ~netlist:net ~gpio_in:gpio img in
          let r2 = Bespoke_cpu.Lockstep.run ~netlist:bad ~gpio_in:gpio img in
          r1.Bespoke_cpu.Lockstep.gpio_final = r2.Bespoke_cpu.Lockstep.gpio_final)
        [ 1; 0x7fff; 0xffff ]
    with
    | Activity.Shadow_mismatch _ -> false
    | Activity.Analysis_error _ -> false
    | Bespoke_cpu.Lockstep.Divergence _ -> false
    | Failure _ -> false
  in
  Alcotest.(check bool) "sabotaged cut detected" false caught

let test_report_counters_consistent () =
  let r, _ =
    analyze ~ram_x:[ (0x0300, 0x0303) ]
      {|
start:  mov #0x0280, sp
        mov &0x0300, r4
        tst r4
        jz a
        mov #1, &0x0380
        halt
a:      mov &0x0302, r5
        tst r5
        jz b
        mov #2, &0x0380
        halt
b:      mov #3, &0x0380
        halt
|}
  in
  Alcotest.(check bool) "paths >= halted" true
    (r.Activity.paths >= r.Activity.halted_paths);
  Alcotest.(check int) "three outcomes" 3 r.Activity.halted_paths

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_analysis"
    [
      ( "exploration",
        [
          Alcotest.test_case "straight line" `Quick test_straightline;
          Alcotest.test_case "input branch forks" `Quick
            test_input_dependent_branch_forks;
          Alcotest.test_case "concrete branch doesn't fork" `Quick
            test_concrete_branch_no_fork;
          Alcotest.test_case "infinite loop converges" `Quick
            test_infinite_loop_converges;
          Alcotest.test_case "input loop converges" `Quick
            test_input_loop_converges;
          Alcotest.test_case "counters consistent" `Quick
            test_report_counters_consistent;
        ] );
      ( "soundness",
        [
          qt test_soundness_vs_concrete;
          Alcotest.test_case "constants match reset" `Quick
            test_constants_match_reset;
          Alcotest.test_case "gpio X exercises input cone" `Quick
            test_gpio_x_marks_input_cone;
          Alcotest.test_case "sabotaged cut is detected" `Slow
            test_shadow_detects_wrong_cut;
        ] );
    ]
