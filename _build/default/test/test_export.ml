module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Export = Bespoke_netlist.Export
module Rtl = Bespoke_rtl.Rtl
module Engine = Bespoke_sim.Engine
module Vcd = Bespoke_sim.Vcd

let counter_net () =
  let b = Rtl.create_builder () in
  let en = Rtl.input b "en" 1 in
  let q = Rtl.wire 4 in
  let r =
    Rtl.in_scope b "counter" (fun () ->
        Rtl.reg b ~enable:en ~init:0 (Rtl.add q (Rtl.constant ~width:4 1)))
  in
  Rtl.( <== ) q r;
  Rtl.output b "q" r;
  Rtl.synthesize b

let count_substring hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_verilog_structure () =
  let net = counter_net () in
  let v = Export.to_verilog ~module_name:"counter" net in
  Alcotest.(check bool) "module decl" true (count_substring v "module counter" = 1);
  Alcotest.(check bool) "endmodule" true (count_substring v "endmodule" = 1);
  Alcotest.(check int) "one flop process per dff" (Netlist.num_dffs net)
    (count_substring v "always @(posedge clk");
  Alcotest.(check bool) "ports declared" true
    (count_substring v "input [0:0] en" = 1 && count_substring v "output [3:0] q" = 1)

let test_verilog_covers_gates () =
  let net = Bespoke_cpu.Cpu.build () in
  let v = Export.to_verilog net in
  (* every combinational real gate appears as exactly one assign of
     its net; count a conservative lower bound *)
  let comb =
    Array.to_seq net.Netlist.gates
    |> Seq.filter (fun (g : Gate.t) ->
           match g.Gate.op with
           | Gate.Input | Gate.Dff _ -> false
           | _ -> true)
    |> Seq.length
  in
  Alcotest.(check bool) "assign per comb gate (plus port bindings)" true
    (count_substring v "assign" >= comb)

let test_dot_modules () =
  let net = Bespoke_cpu.Cpu.build () in
  let d = Export.module_graph_dot net in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " present") true (count_substring d m > 0))
    [ "multiplier"; "register_file"; "frontend" ];
  Alcotest.(check bool) "digraph" true (count_substring d "digraph" = 1)

let test_dot_gates_limit () =
  let net = Bespoke_cpu.Cpu.build () in
  Alcotest.(check bool) "limit enforced" true
    (try
       ignore (Export.gate_graph_dot ~max_gates:100 net);
       false
     with Invalid_argument _ -> true);
  let small = counter_net () in
  let d = Export.gate_graph_dot small in
  Alcotest.(check bool) "clustered" true (count_substring d "subgraph" >= 1)

let test_vcd_roundtrip () =
  let net = counter_net () in
  let eng = Engine.create net in
  Engine.reset eng;
  Engine.set_input_int eng "en" 1;
  Engine.eval eng;
  let buf = Buffer.create 1024 in
  let vcd = Vcd.create buf eng ~signals:[ "q"; "en" ] in
  for t = 0 to 5 do
    Vcd.sample vcd ~time:t;
    Engine.step eng
  done;
  Vcd.finish vcd ~time:6;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "header" true (count_substring s "$enddefinitions" = 1);
  Alcotest.(check bool) "q declared" true (count_substring s "$var wire 4" = 1);
  (* q changes every cycle: 6 samples emit 6 vector records *)
  Alcotest.(check int) "vector changes" 6 (count_substring s "b0");
  Alcotest.(check bool) "timestamps" true (count_substring s "#0" >= 1)

let test_vcd_unknown_signal () =
  let eng = Engine.create (counter_net ()) in
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Vcd.create (Buffer.create 16) eng ~signals:[ "nope" ]))

let test_vcd_x_values () =
  let net = counter_net () in
  let eng = Engine.create net in
  Engine.reset eng;
  Engine.set_input_x eng "en";
  Engine.eval eng;
  Engine.step eng;
  let buf = Buffer.create 256 in
  let vcd = Vcd.create buf eng ~signals:[ "q" ] in
  Vcd.sample vcd ~time:0;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "x recorded" true (count_substring s "x" > 0)

let () =
  Alcotest.run "bespoke_export"
    [
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "covers the cpu" `Slow test_verilog_covers_gates;
        ] );
      ( "dot",
        [
          Alcotest.test_case "module graph" `Slow test_dot_modules;
          Alcotest.test_case "gate graph limit" `Slow test_dot_gates_limit;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "roundtrip" `Quick test_vcd_roundtrip;
          Alcotest.test_case "unknown signal" `Quick test_vcd_unknown_signal;
          Alcotest.test_case "x values" `Quick test_vcd_x_values;
        ] );
    ]
