test/test_mutation.ml: Alcotest Bespoke_core Bespoke_isa Bespoke_mutation Bespoke_programs List Printf String
