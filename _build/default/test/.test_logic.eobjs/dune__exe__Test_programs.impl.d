test/test_programs.ml: Alcotest Array Bespoke_core Bespoke_isa Bespoke_programs List Printf
