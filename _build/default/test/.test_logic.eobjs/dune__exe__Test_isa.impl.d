test/test_isa.ml: Alcotest Array Bespoke_isa List Printf QCheck QCheck_alcotest String
