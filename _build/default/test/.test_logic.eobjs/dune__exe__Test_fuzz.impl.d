test/test_fuzz.ml: Alcotest Bespoke_analysis Bespoke_core Bespoke_cpu Bespoke_isa Bespoke_programs Buffer Lazy List Printf QCheck QCheck_alcotest
