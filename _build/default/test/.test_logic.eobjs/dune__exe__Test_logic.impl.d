test/test_logic.ml: Alcotest Array Bespoke_logic List QCheck QCheck_alcotest
