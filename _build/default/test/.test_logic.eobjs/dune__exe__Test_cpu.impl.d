test/test_cpu.ml: Alcotest Array Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Lazy List Printf
