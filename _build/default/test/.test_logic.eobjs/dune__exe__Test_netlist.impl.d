test/test_netlist.ml: Alcotest Array Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Int List Option Printf
