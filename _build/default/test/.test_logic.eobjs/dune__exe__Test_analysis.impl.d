test/test_analysis.ml: Alcotest Array Bespoke_analysis Bespoke_core Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_sim Lazy List QCheck QCheck_alcotest
