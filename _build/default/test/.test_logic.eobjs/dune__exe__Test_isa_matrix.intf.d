test/test_isa_matrix.mli:
