test/test_paper_example.ml: Alcotest Array Bespoke_core Bespoke_logic Bespoke_netlist Bespoke_sim List
