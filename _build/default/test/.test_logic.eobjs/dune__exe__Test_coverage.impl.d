test/test_coverage.ml: Alcotest Bespoke_coverage Bespoke_programs List
