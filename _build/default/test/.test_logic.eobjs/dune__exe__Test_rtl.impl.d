test/test_rtl.ml: Alcotest Array Bespoke_logic Bespoke_netlist Bespoke_rtl Bespoke_sim List Printf QCheck QCheck_alcotest String
