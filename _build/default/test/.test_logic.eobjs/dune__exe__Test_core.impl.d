test/test_core.ml: Alcotest Array Bespoke_analysis Bespoke_core Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_programs Bespoke_rtl Bespoke_sim List Printf QCheck QCheck_alcotest Seq
