test/test_sim.ml: Alcotest Array Bespoke_logic Bespoke_netlist Bespoke_rtl Bespoke_sim List QCheck QCheck_alcotest String
