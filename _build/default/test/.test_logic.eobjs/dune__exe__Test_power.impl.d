test/test_power.ml: Alcotest Array Bespoke_cells Bespoke_cpu Bespoke_logic Bespoke_netlist Bespoke_power Bespoke_rtl List QCheck QCheck_alcotest
