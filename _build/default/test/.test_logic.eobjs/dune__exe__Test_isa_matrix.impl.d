test/test_isa_matrix.ml: Alcotest Bespoke_core Bespoke_cpu Bespoke_isa List Printf
