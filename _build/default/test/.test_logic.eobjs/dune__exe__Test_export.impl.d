test/test_export.ml: Alcotest Array Bespoke_cpu Bespoke_logic Bespoke_netlist Bespoke_rtl Bespoke_sim Buffer List Seq String
