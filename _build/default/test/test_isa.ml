module Isa = Bespoke_isa.Isa
module Asm = Bespoke_isa.Asm
module Iss = Bespoke_isa.Iss
module Memmap = Bespoke_isa.Memmap
module Timing = Bespoke_isa.Timing

(* ---- encode/decode ---- *)

let roundtrip i =
  match Isa.encode i with
  | [] -> Alcotest.fail "empty encoding"
  | w :: rest ->
    let i', used = Isa.decode w rest in
    Alcotest.(check int)
      (Isa.to_string i ^ " length")
      (List.length (w :: rest))
      used;
    Alcotest.(check string) "roundtrip" (Isa.to_string i) (Isa.to_string i')

let test_roundtrip_two () =
  List.iter roundtrip
    [
      Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Sreg 4; dst = Isa.Dreg 5 };
      Isa.Two { op = Isa.ADD; size = Isa.Byte; src = Isa.Sind 6; dst = Isa.Dreg 7 };
      Isa.Two
        { op = Isa.SUB; size = Isa.Word; src = Isa.Sinc 8; dst = Isa.Didx (9, 12) };
      Isa.Two
        {
          op = Isa.CMP;
          size = Isa.Word;
          src = Isa.Sidx (10, 0x20);
          dst = Isa.Didx (Isa.sr, 0x0212);
        };
      Isa.Two
        { op = Isa.XOR; size = Isa.Word; src = Isa.Imm 0x1234; dst = Isa.Dreg 12 };
      Isa.Two { op = Isa.AND; size = Isa.Byte; src = Isa.Imm 1; dst = Isa.Dreg 13 };
      Isa.Two { op = Isa.DADD; size = Isa.Word; src = Isa.Imm 8; dst = Isa.Dreg 4 };
      Isa.Two
        { op = Isa.BIS; size = Isa.Word; src = Isa.Imm 0xffff; dst = Isa.Dreg 15 };
    ]

let test_roundtrip_one () =
  List.iter roundtrip
    [
      Isa.One { op = Isa.RRC; size = Isa.Word; dst = Isa.Sreg 4 };
      Isa.One { op = Isa.RRA; size = Isa.Byte; dst = Isa.Sind 5 };
      Isa.One { op = Isa.SWPB; size = Isa.Word; dst = Isa.Sreg 6 };
      Isa.One { op = Isa.SXT; size = Isa.Word; dst = Isa.Sreg 7 };
      Isa.One { op = Isa.PUSH; size = Isa.Word; dst = Isa.Imm 0x55aa };
      Isa.One { op = Isa.CALL; size = Isa.Word; dst = Isa.Imm 0xf200 };
    ]

let test_roundtrip_jumps () =
  List.iter roundtrip
    [
      Isa.Jump { cond = Isa.JNE; off = -3 };
      Isa.Jump { cond = Isa.JEQ; off = 0 };
      Isa.Jump { cond = Isa.JMP; off = 511 };
      Isa.Jump { cond = Isa.JL; off = -512 };
    ]

let test_cg_encodings () =
  (* Constant-generator immediates must be single-word. *)
  List.iter
    (fun n ->
      let i =
        Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Imm n; dst = Isa.Dreg 4 }
      in
      Alcotest.(check int)
        (Printf.sprintf "#%d one word" n)
        1
        (List.length (Isa.encode i)))
    [ 0; 1; 2; 4; 8; 0xffff ];
  let long =
    Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Imm 3; dst = Isa.Dreg 4 }
  in
  Alcotest.(check int) "#3 two words" 2 (List.length (Isa.encode long))

let gen_insn =
  let open QCheck.Gen in
  let reg = int_range 4 15 in
  let src =
    oneof
      [
        map (fun r -> Isa.Sreg r) reg;
        map2 (fun r x -> Isa.Sidx (r, x)) reg (int_bound 0xff);
        map (fun r -> Isa.Sind r) reg;
        map (fun r -> Isa.Sinc r) reg;
        map (fun n -> Isa.Imm n) (int_bound 0xffff);
      ]
  in
  let dst =
    oneof
      [
        map (fun r -> Isa.Dreg r) reg;
        map2 (fun r x -> Isa.Didx (r, x)) reg (int_bound 0xff);
      ]
  in
  let two_op =
    oneofl
      [
        Isa.MOV; Isa.ADD; Isa.ADDC; Isa.SUBC; Isa.SUB; Isa.CMP; Isa.DADD;
        Isa.BIT; Isa.BIC; Isa.BIS; Isa.XOR; Isa.AND;
      ]
  in
  let size = oneofl [ Isa.Word; Isa.Byte ] in
  oneof
    [
      (fun st ->
        let op = two_op st and size = size st and src = src st and dst = dst st in
        Isa.Two { op; size; src; dst });
      (fun st ->
        let op = oneofl [ Isa.RRC; Isa.RRA ] st
        and size = size st
        and d = src st in
        Isa.One { op; size; dst = d });
      map2
        (fun c off -> Isa.Jump { cond = c; off })
        (oneofl [ Isa.JNE; Isa.JEQ; Isa.JNC; Isa.JC; Isa.JN; Isa.JGE; Isa.JL; Isa.JMP ])
        (int_range (-512) 511);
    ]

let test_roundtrip_random =
  QCheck.Test.make ~name:"random encode/decode roundtrip" ~count:500
    (QCheck.make ~print:Isa.to_string gen_insn)
    (fun i ->
      match Isa.encode i with
      | w :: rest ->
        let i', used = Isa.decode w rest in
        used = 1 + List.length rest && Isa.to_string i = Isa.to_string i'
      | [] -> false)

(* ---- assembler ---- *)

let test_asm_basic () =
  let img =
    Asm.assemble
      {|
        .equ N, 3
start:  mov #0x0280, sp
        mov #N, r4
loop:   dec r4
        jnz loop
        halt
|}
  in
  Alcotest.(check int) "entry" Memmap.rom_base img.Asm.entry;
  let rom = Asm.image_rom img in
  (* first word: mov #imm(long), sp *)
  let i, _ = Isa.decode rom.(0) [ rom.(1) ] in
  Alcotest.(check string) "first" "mov #640, sp" (Isa.to_string i)

let test_asm_labels_and_words () =
  let img =
    Asm.assemble
      {|
start:  jmp start
        .org 0xf100
tbl:    .word 1, 2, tbl
|}
  in
  let w = List.assoc 0xf100 img.Asm.words in
  Alcotest.(check int) "word1" 1 w;
  Alcotest.(check int) "label value" 0xf100 (List.assoc 0xf104 img.Asm.words)

let test_asm_errors () =
  let expect_error src =
    match Asm.assemble src with
    | exception Asm.Error _ -> ()
    | _ -> Alcotest.fail "expected assembly error"
  in
  expect_error "start: bogus r4\n";
  expect_error "start: mov r4\n";
  expect_error "start: mov #1, #2\n";
  expect_error "start: jmp missing_label\n";
  expect_error "start: mov #1, r4\nstart: nop\n"

let test_asm_reset_vector () =
  let img = Asm.assemble "start: halt\n" in
  Alcotest.(check int) "vector" Memmap.rom_base
    (List.assoc Memmap.reset_vector img.Asm.words)

let test_asm_expressions () =
  let img =
    Asm.assemble
      {|
        .equ BASE, 0x0300
        .equ OFF, 6
start:  mov #BASE+OFF, r4
        mov #BASE-2, r5
        mov #-1, r6
        halt
|}
  in
  let rom = Asm.image_rom img in
  Alcotest.(check int) "plus" 0x0306 rom.(1);
  Alcotest.(check int) "minus" 0x02fe rom.(3)

let test_asm_space_directive () =
  let img =
    Asm.assemble
      {|
start:  jmp start
        .org 0xf100
buf:    .space 3
after:  .word after
|}
  in
  Alcotest.(check int) "space skipped" 0xf106 (List.assoc 0xf106 img.Asm.words);
  Alcotest.(check int) "zero filled" 0 (List.assoc 0xf102 img.Asm.words)

let test_asm_line_map () =
  let img = Asm.assemble "start: nop\n nop\n halt\n" in
  Alcotest.(check int) "three instructions" 3
    (List.length img.Asm.line_of_addr);
  Alcotest.(check (list int)) "consecutive addrs"
    [ 0xf000; 0xf002; 0xf004 ]
    (Asm.instruction_addrs img)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let test_disasm_listing () =
  let img =
    Asm.assemble "start: mov #0x1234, r4\n add r4, r5\n halt\n"
  in
  let l = Bespoke_isa.Disasm.listing img in
  Alcotest.(check bool) "has mov" true (contains l "mov #4660, r4");
  Alcotest.(check bool) "has add" true (contains l "add r4, r5");
  Alcotest.(check bool) "has addresses" true (contains l "f000:")

(* ---- ISS ---- *)

let run_program ?(max_insns = 100_000) src =
  let img = Asm.assemble src in
  let t = Iss.create img in
  Iss.reset t;
  Iss.run ~max_insns t;
  t

let test_iss_arith () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #21, r4
        add r4, r4          ; r4 = 42
        mov #100, r5
        sub #58, r5         ; r5 = 42
        mov #0xffff, r6
        inc r6              ; r6 = 0, carry set
        adc r7              ; r7 = 1 (captures carry)
        halt
|}
  in
  Alcotest.(check int) "r4" 42 (Iss.reg t 4);
  Alcotest.(check int) "r5" 42 (Iss.reg t 5);
  Alcotest.(check int) "r6" 0 (Iss.reg t 6);
  Alcotest.(check int) "r7" 1 (Iss.reg t 7)

let test_iss_memory () =
  let t =
    run_program
      {|
        .equ buf, 0x0220
start:  mov #0x0280, sp
        mov #0xbeef, &buf
        mov &buf, r4
        mov #buf, r5
        mov.b @r5, r6        ; low byte
        mov.b 1(r5), r7      ; high byte
        halt
|}
  in
  Alcotest.(check int) "r4" 0xbeef (Iss.reg t 4);
  Alcotest.(check int) "r6" 0xef (Iss.reg t 6);
  Alcotest.(check int) "r7" 0xbe (Iss.reg t 7)

let test_iss_loop_sum () =
  (* sum 1..10 = 55 *)
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        clr r4               ; acc
        mov #10, r5
loop:   add r5, r4
        dec r5
        jnz loop
        mov r4, &0x0200
        halt
|}
  in
  Alcotest.(check int) "sum" 55 (Iss.read_ram_word t 0x0200)

let test_iss_call_ret () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #5, r4
        call #double
        call #double
        halt
double: add r4, r4
        ret
|}
  in
  Alcotest.(check int) "r4" 20 (Iss.reg t 4);
  Alcotest.(check int) "sp restored" 0x0280 (Iss.reg t 1)

let test_iss_push_pop () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #7, r4
        push r4
        clr r4
        pop r5
        halt
|}
  in
  Alcotest.(check int) "r5" 7 (Iss.reg t 5);
  Alcotest.(check int) "sp" 0x0280 (Iss.reg t 1)

let test_iss_byte_ops () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #0x1234, r4
        swpb r4              ; 0x3412
        mov #0x00ff, r5
        add.b #1, r5         ; byte add: 0x00 (carry), zero-extended
        mov #0x0080, r6
        sxt r6               ; 0xff80
        halt
|}
  in
  Alcotest.(check int) "swpb" 0x3412 (Iss.reg t 4);
  Alcotest.(check int) "add.b" 0x0000 (Iss.reg t 5);
  Alcotest.(check int) "sxt" 0xff80 (Iss.reg t 6)

let test_iss_shifts () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #0x8001, r4
        rra r4               ; arithmetic: 0xc000, C=1
        mov #0x0001, r5
        clrc
        rrc r5               ; 0x0000, C=1
        rrc r5               ; C into msb: 0x8000
        halt
|}
  in
  Alcotest.(check int) "rra" 0xc000 (Iss.reg t 4);
  Alcotest.(check int) "rrc twice" 0x8000 (Iss.reg t 5)

let test_iss_dadd () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #0x0199, r4
        clrc
        dadd #0x0001, r4     ; BCD: 0199 + 1 = 0200
        halt
|}
  in
  Alcotest.(check int) "dadd" 0x0200 (Iss.reg t 4)

let test_iss_conditionals () =
  let t =
    run_program
      {|
start:  mov #0x0280, sp
        mov #5, r4
        cmp #5, r4
        jeq eq_ok
        mov #0xdead, &0x0200
        halt
eq_ok:  mov #1, &0x0200
        mov #0xfffe, r5      ; -2
        cmp #1, r5           ; -2 - 1 : negative
        jl lt_ok
        mov #0xdead, &0x0202
        halt
lt_ok:  mov #1, &0x0202
        halt
|}
  in
  Alcotest.(check int) "eq" 1 (Iss.read_ram_word t 0x0200);
  Alcotest.(check int) "signed lt" 1 (Iss.read_ram_word t 0x0202)

let test_iss_gpio_and_halt () =
  let img =
    Asm.assemble
      {|
start:  mov #0x0280, sp
        mov &0x0010, r4      ; read gpio_in
        add #1, r4
        mov r4, &0x0012      ; write gpio_out
        halt
|}
  in
  let t = Iss.create img in
  Iss.reset t;
  Iss.set_gpio_in t 41;
  Iss.run t;
  Alcotest.(check int) "gpio out" 42 (Iss.gpio_out t);
  Alcotest.(check bool) "halted" true (Iss.halted t);
  Alcotest.(check int) "trace length" 1 (List.length (Iss.output_trace t))

let test_iss_multiplier () =
  let t =
    run_program
      (Printf.sprintf
         {|
start:  mov #0x0280, sp
        mov #1234, &0x%04x    ; MPY op1
        mov #567, &0x%04x     ; OP2: triggers
        mov &0x%04x, r4       ; RESLO
        mov &0x%04x, r5       ; RESHI
        mov #2, &0x%04x       ; MAC op1
        mov #3, &0x%04x       ; OP2: accumulate +6
        mov &0x%04x, r6       ; RESLO
        halt
|}
         Memmap.mpy_op1 Memmap.mpy_op2 Memmap.mpy_reslo Memmap.mpy_reshi
         Memmap.mpy_mac Memmap.mpy_op2 Memmap.mpy_reslo)
  in
  let prod = 1234 * 567 in
  Alcotest.(check int) "reslo" (prod land 0xffff) (Iss.reg t 4);
  Alcotest.(check int) "reshi" (prod lsr 16) (Iss.reg t 5);
  Alcotest.(check int) "mac" ((prod + 6) land 0xffff) (Iss.reg t 6)

let test_iss_irq () =
  let img =
    Asm.assemble
      {|
        .irq handler
start:  mov #0x0280, sp
        mov #1, &0x0000      ; enable IRQ in IE
        eint
wait:   jmp wait
handler: mov #0x1234, &0x0200
        mov #1, &0x0014      ; halt from handler
        reti
|}
  in
  let t = Iss.create img in
  Iss.reset t;
  (* run a few instructions, then raise the line *)
  for _ = 1 to 6 do
    Iss.step t
  done;
  Iss.set_irq_line t true;
  Iss.run t;
  Alcotest.(check int) "handler ran" 0x1234 (Iss.read_ram_word t 0x0200)

let test_iss_cycle_counter () =
  (* dbg cycle counter low must follow the Timing model accumulation;
     the counter only runs while tracing (dbg_ctl bit 0) is enabled *)
  let t =
    run_program
      {|
start:  mov #0x0280, sp      ; 3 cycles (imm long)
        mov #1, &0x0040      ; enable: 5 cycles (CG imm, abs dst)
        nop                  ; 2 cycles
        mov &0x0046, r4      ; dbg_cyc_lo read happens at SRC_RD stage
        halt
|}
  in
  (* enable written at cycle 7 (DST_WR of the second mov), so counting
     starts at cycle 8; the read lands at cycle 10+2=12: value 4 *)
  Alcotest.(check int) "cycle sample" 4 (Iss.reg t 4)

let test_timing_model () =
  let c src = Timing.cycles src in
  Alcotest.(check int) "reg-reg" 2
    (c (Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Sreg 4; dst = Isa.Dreg 5 }));
  Alcotest.(check int) "imm long" 3
    (c (Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Imm 77; dst = Isa.Dreg 5 }));
  Alcotest.(check int) "cg imm" 2
    (c (Isa.Two { op = Isa.MOV; size = Isa.Word; src = Isa.Imm 1; dst = Isa.Dreg 5 }));
  Alcotest.(check int) "mem-mem" 7
    (c
       (Isa.Two
          {
            op = Isa.ADD;
            size = Isa.Word;
            src = Isa.Sidx (4, 2);
            dst = Isa.Didx (5, 4);
          }));
  Alcotest.(check int) "jump" 2 (c (Isa.Jump { cond = Isa.JMP; off = 1 }));
  Alcotest.(check int) "reti" 3
    (c (Isa.One { op = Isa.RETI; size = Isa.Word; dst = Isa.Sreg 0 }))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "two-op roundtrip" `Quick test_roundtrip_two;
          Alcotest.test_case "one-op roundtrip" `Quick test_roundtrip_one;
          Alcotest.test_case "jump roundtrip" `Quick test_roundtrip_jumps;
          Alcotest.test_case "constant generators" `Quick test_cg_encodings;
          qt test_roundtrip_random;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "basic" `Quick test_asm_basic;
          Alcotest.test_case "labels and words" `Quick test_asm_labels_and_words;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "reset vector" `Quick test_asm_reset_vector;
          Alcotest.test_case "expressions" `Quick test_asm_expressions;
          Alcotest.test_case ".space" `Quick test_asm_space_directive;
          Alcotest.test_case "line map" `Quick test_asm_line_map;
          Alcotest.test_case "disasm listing" `Quick test_disasm_listing;
        ] );
      ( "iss",
        [
          Alcotest.test_case "arithmetic" `Quick test_iss_arith;
          Alcotest.test_case "memory" `Quick test_iss_memory;
          Alcotest.test_case "loop sum" `Quick test_iss_loop_sum;
          Alcotest.test_case "call/ret" `Quick test_iss_call_ret;
          Alcotest.test_case "push/pop" `Quick test_iss_push_pop;
          Alcotest.test_case "byte ops" `Quick test_iss_byte_ops;
          Alcotest.test_case "shifts" `Quick test_iss_shifts;
          Alcotest.test_case "dadd" `Quick test_iss_dadd;
          Alcotest.test_case "conditionals" `Quick test_iss_conditionals;
          Alcotest.test_case "gpio/halt" `Quick test_iss_gpio_and_halt;
          Alcotest.test_case "multiplier" `Quick test_iss_multiplier;
          Alcotest.test_case "irq" `Quick test_iss_irq;
          Alcotest.test_case "cycle counter" `Quick test_iss_cycle_counter;
          Alcotest.test_case "timing model" `Quick test_timing_model;
        ] );
    ]
