module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Asm = Bespoke_isa.Asm
module Isa = Bespoke_isa.Isa
module Memmap = Bespoke_isa.Memmap
module Cpu = Bespoke_cpu.Cpu
module System = Bespoke_cpu.System
module Lockstep = Bespoke_cpu.Lockstep

(* Building the netlist is expensive; share one across tests. *)
let the_netlist = lazy (Cpu.build ())

let lockstep ?gpio_in ?irq_pulse_at src =
  Lockstep.run ~netlist:(Lazy.force the_netlist) ?gpio_in ?irq_pulse_at
    (Asm.assemble src)

let test_netlist_sanity () =
  let net = Lazy.force the_netlist in
  Netlist.validate net;
  ignore (Netlist.levelize net);
  Alcotest.(check bool) "has gates" true (Netlist.num_gates net > 2000);
  Alcotest.(check bool) "has dffs" true (Netlist.num_dffs net > 300);
  let mods = Netlist.modules net in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " present") true (List.mem m mods))
    [
      "frontend"; "execution"; "register_file"; "mem_backbone"; "sfr";
      "gpio"; "clock_module"; "watchdog"; "dbg"; "multiplier";
    ]

let test_lockstep_arith () =
  let r =
    lockstep
      {|
start:  mov #0x0280, sp
        mov #21, r4
        add r4, r4
        mov #100, r5
        sub #58, r5
        xor r4, r5
        and #0x00f0, r5
        bis #0x0f00, r5
        bic #0x0100, r5
        mov r5, &0x0200
        halt
|}
  in
  Alcotest.(check bool) "ran" true (r.Lockstep.instructions > 5)

(* @rn is not a destination mode in MSP430; the assembler must reject it. *)
let test_asm_rejects_ind_dst () =
  match Asm.assemble "start: mov #1, @r4\n halt\n" with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_lockstep_memory_modes () =
  let r =
    lockstep
      {|
        .equ buf, 0x0240
start:  mov #0x0280, sp
        mov #buf, r4
        mov #0x1234, 0(r4)   ; indexed write
        mov @r4, r5          ; indirect read
        mov #buf, r6
        mov @r6+, r7         ; autoincrement
        mov 0xfffe(r6), r8   ; indexed with negative offset (buf again)
        mov &buf, r9         ; absolute read
        add #1, &buf         ; rmw absolute
        mov.b @r4, r10       ; byte read low
        mov.b 1(r4), r11     ; byte read high
        mov.b r10, 2(r4)     ; byte write
        halt
|}
  in
  Alcotest.(check bool) "ran" true (r.Lockstep.instructions > 10)

let test_lockstep_flow () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #5, r4
        clr r5
loop:   add r4, r5
        dec r4
        jnz loop
        call #sub1
        push #0x55aa
        pop r7
        cmp #0x55aa, r7
        jne bad
        mov r5, &0x0200
        halt
bad:    mov #0xdead, &0x0202
        halt
sub1:   inc r6
        ret
|})

let test_lockstep_all_two_ops () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #0x1357, r4
        mov #0x0246, r5
        add r4, r5
        addc r4, r5
        sub r4, r5
        subc r4, r5
        cmp r4, r5
        dadd #0x0125, r4
        bit #0x0f0f, r5
        bic #0x00ff, r5
        bis #0x8000, r5
        xor r4, r5
        and #0x7fff, r5
        mov r5, &0x0200
        mov r4, &0x0202
        halt
|})

let test_lockstep_one_ops () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #0x8001, r4
        rra r4
        rrc r4
        swpb r4
        sxt r4
        mov #0xff, r5
        rra.b r5
        rrc.b r5
        mov r4, &0x0200
        mov r5, &0x0202
        halt
|})

let test_lockstep_byte_ops () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #0x12ff, r4
        add.b #1, r4         ; zero-extends into register
        mov #0x0280, r6
        mov #0xabcd, 0(r6)
        add.b #0x11, 0(r6)   ; memory byte rmw (low lane)
        add.b #0x11, 1(r6)   ; memory byte rmw (high lane)
        cmp.b #0xde, 1(r6)
        jne bad
        mov #1, &0x0200
        halt
bad:    mov #2, &0x0200
        halt
|})

let test_lockstep_jumps () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #0x7fff, r4
        add #1, r4           ; overflow: V set, N set
        jn n_ok
        jmp bad
n_ok:   jge bad              ; N<>V -> JGE false
        jl l_ok
        jmp bad
l_ok:   clrc
        jnc c_ok
        jmp bad
c_ok:   setc
        jc done
        jmp bad
bad:    mov #0xdead, &0x0200
done:   halt
|})

let test_lockstep_sr_dst () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #0x0007, sr      ; write flags directly
        jnc bad
        jne bad
        mov r2, r4           ; read SR
        mov r4, &0x0200
        halt
bad:    mov #0xdead, &0x0200
        halt
|})

let test_lockstep_cg_constants () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        clr r4
        add #1, r4
        add #2, r4
        add #4, r4
        add #8, r4
        add #0xffff, r4      ; -1
        mov #0, r5
        mov r4, &0x0200
        halt
|})

let test_lockstep_peripherals () =
  let r =
    lockstep ~gpio_in:0x00ff
      (Printf.sprintf
         {|
start:  mov #0x0280, sp
        mov &0x%04x, r4      ; gpio in
        mov r4, &0x%04x      ; gpio out
        mov #1234, &0x%04x   ; mpy op1
        mov #99, &0x%04x     ; op2 trigger
        mov &0x%04x, r5      ; reslo
        mov &0x%04x, r6      ; reshi
        mov &0x%04x, r7      ; dbg cycle counter low
        mov &0x%04x, r8      ; clk counter
        mov #0x00, &0x%04x   ; start watchdog (clear hold)
        nop
        nop
        mov &0x%04x, r9      ; wdt counter
        mov #0x80, &0x%04x   ; stop watchdog
        halt
|}
         Memmap.gpio_in Memmap.gpio_out Memmap.mpy_op1 Memmap.mpy_op2
         Memmap.mpy_reslo Memmap.mpy_reshi Memmap.dbg_cyc_lo Memmap.clk_cnt
         Memmap.wdt_ctl Memmap.wdt_cnt Memmap.wdt_ctl)
  in
  Alcotest.(check int) "gpio echoed" 0x00ff r.Lockstep.gpio_final

let test_lockstep_dbg_block () =
  ignore
    (lockstep
       (Printf.sprintf
          {|
start:  mov #0x0280, sp
        mov #brkpt, &0x%04x  ; breakpoint address
        mov #3, &0x%04x      ; enable trace + brk
        nop
brkpt:  nop
        mov &0x%04x, r4      ; ctl: bit15 should be set
        mov &0x%04x, r5      ; last traced pc
        mov r4, &0x0200
        halt
|}
          Memmap.dbg_brk Memmap.dbg_ctl Memmap.dbg_ctl Memmap.dbg_pc))

let test_lockstep_irq () =
  let r =
    lockstep ~irq_pulse_at:[ 6 ]
      {|
        .irq handler
start:  mov #0x0280, sp
        mov #1, &0x0000      ; IE
        eint
        clr r4
wait:   inc r4
        cmp #200, r4
        jne wait
        halt
handler: mov r4, &0x0200
        reti
|}
  in
  Alcotest.(check bool) "ran" true (r.Lockstep.instructions > 10)

let test_lockstep_nested_calls () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #3, r4
        call #fib            ; fib(3) via naive recursion
        mov r5, &0x0200
        halt
fib:    cmp #2, r4
        jge rec
        mov r4, r5
        ret
rec:    push r4
        dec r4
        call #fib
        pop r4
        push r5
        sub #2, r4
        call #fib
        pop r6
        add r6, r5
        ret
|})

let test_lockstep_call_modes () =
  ignore
    (lockstep
       {|
start:  mov #0x0280, sp
        mov #target, r4
        call r4              ; register target
        mov #tab, r5
        call @r5             ; indirect target
        call #target         ; immediate target
        halt
tab:    .word target
target: inc r6
        ret
|})

(* X-propagation: with unknown GPIO input, data-dependent registers
   become X but control flow stays known. *)
let test_symbolic_gpio () =
  let img =
    Asm.assemble
      {|
start:  mov #0x0280, sp
        mov &0x0010, r4      ; unknown input
        add #1, r4
        mov r4, &0x0200
        halt
|}
  in
  let sys = System.create ~netlist:(Lazy.force the_netlist) img in
  System.reset sys;
  System.set_gpio_in_x sys;
  System.set_irq sys Bit.Zero;
  let cycles = System.run ~max_cycles:200 sys in
  Alcotest.(check bool) "finished" true (cycles > 0);
  let v = System.read_ram_word sys 0x0200 in
  Alcotest.(check bool) "result unknown" false (Bvec.is_known v);
  Alcotest.(check bool) "halted" true (System.halted sys)

let test_symbolic_branch_hooks () =
  (* an input-dependent branch makes "fetching" eventually X-free but
     branch_taken X at the jump's EXEC cycle *)
  let img =
    Asm.assemble
      {|
start:  mov #0x0280, sp
        mov &0x0010, r4
        tst r4
        jnz nz
        mov #1, &0x0200
        halt
nz:     mov #2, &0x0200
        halt
|}
  in
  let sys = System.create ~netlist:(Lazy.force the_netlist) img in
  System.reset sys;
  System.set_gpio_in_x sys;
  System.set_irq sys Bit.Zero;
  (* run until the jump's EXEC cycle: branch_taken must be X there *)
  let saw_x_branch = ref false in
  (try
     for _ = 1 to 60 do
       System.step_cycle sys;
       match (System.read_hook sys "exec_jump").(0) with
       | Bit.One | Bit.X ->
         if not (Bvec.is_known [| (System.read_hook sys "branch_taken").(0) |])
         then begin
           saw_x_branch := true;
           raise Exit
         end
       | Bit.Zero -> ()
     done
   with Exit -> ());
  Alcotest.(check bool) "saw X branch decision" true !saw_x_branch;
  Alcotest.(check bool) "target known" true
    (Bvec.is_known (System.read_hook sys "branch_target"));
  Alcotest.(check bool) "fallthrough known" true
    (Bvec.is_known (System.read_hook sys "branch_fallthrough"))

let test_snapshot_restore () =
  let img =
    Asm.assemble
      {|
start:  mov #0x0280, sp
        clr r4
loop:   inc r4
        cmp #10, r4
        jne loop
        mov r4, &0x0200
        halt
|}
  in
  let sys = System.create ~netlist:(Lazy.force the_netlist) img in
  System.reset sys;
  System.set_irq sys Bit.Zero;
  System.set_gpio_in_int sys 0;
  for _ = 1 to 20 do
    System.step_cycle sys
  done;
  let snap = System.snapshot sys in
  let pc1 = System.pc sys in
  for _ = 1 to 15 do
    System.step_cycle sys
  done;
  System.restore sys snap;
  Alcotest.(check string) "pc restored" (Bvec.to_string pc1)
    (Bvec.to_string (System.pc sys));
  (* and the run still completes correctly *)
  ignore (System.run ~max_cycles:2000 sys);
  Alcotest.(check (option int)) "result" (Some 10)
    (Bvec.to_int (System.read_ram_word sys 0x0200))

let () =
  Alcotest.run "bespoke_cpu"
    [
      ( "netlist",
        [ Alcotest.test_case "sanity" `Quick test_netlist_sanity ] );
      ( "lockstep",
        [
          Alcotest.test_case "arith" `Quick test_lockstep_arith;
          Alcotest.test_case "assembler rejects @rn dst" `Quick
            test_asm_rejects_ind_dst;
          Alcotest.test_case "memory modes" `Quick test_lockstep_memory_modes;
          Alcotest.test_case "control flow" `Quick test_lockstep_flow;
          Alcotest.test_case "all two-ops" `Quick test_lockstep_all_two_ops;
          Alcotest.test_case "one-ops" `Quick test_lockstep_one_ops;
          Alcotest.test_case "byte ops" `Quick test_lockstep_byte_ops;
          Alcotest.test_case "jumps/flags" `Quick test_lockstep_jumps;
          Alcotest.test_case "sr as dst" `Quick test_lockstep_sr_dst;
          Alcotest.test_case "cg constants" `Quick test_lockstep_cg_constants;
          Alcotest.test_case "peripherals" `Quick test_lockstep_peripherals;
          Alcotest.test_case "debug block" `Quick test_lockstep_dbg_block;
          Alcotest.test_case "irq" `Quick test_lockstep_irq;
          Alcotest.test_case "recursion" `Quick test_lockstep_nested_calls;
          Alcotest.test_case "call modes" `Quick test_lockstep_call_modes;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "x data propagation" `Quick test_symbolic_gpio;
          Alcotest.test_case "x branch hooks" `Quick test_symbolic_branch_hooks;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        ] );
    ]
