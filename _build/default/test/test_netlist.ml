module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module B = Netlist.Builder

(* A tiny hand-built netlist:
   in a, b; n1 = a & b; n2 = ~n1; dff q <- n2; out = q ^ n1 *)
let tiny () =
  let b = B.create () in
  let a_in = B.add_op b Gate.Input [||] in
  let b_in = B.add_op b Gate.Input [||] in
  let n1 = B.add_op b Gate.And [| a_in; b_in |] in
  let n2 = B.add_op b Gate.Not [| n1 |] in
  let q = B.add_op b (Gate.Dff Bit.Zero) [| n2 |] in
  let out = B.add_op b Gate.Xor [| q; n1 |] in
  B.set_input_port b "a" [| a_in |];
  B.set_input_port b "b" [| b_in |];
  B.set_output_port b "out" [| out |];
  (B.finish b, a_in, b_in, n1, n2, q, out)

let test_counts () =
  let n, _, _, _, _, _, _ = tiny () in
  Alcotest.(check int) "gate_count" 6 (Netlist.gate_count n);
  Alcotest.(check int) "num_gates (no inputs)" 4 (Netlist.num_gates n);
  Alcotest.(check int) "num_dffs" 1 (Netlist.num_dffs n)

let test_levelize () =
  let n, _, _, n1, n2, _, out = tiny () in
  let order = Array.to_list (Netlist.levelize n) in
  Alcotest.(check int) "comb gates" 3 (List.length order);
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  Alcotest.(check bool) "n1 before n2" true (pos n1 < pos n2);
  Alcotest.(check bool) "n1 before out" true (pos n1 < pos out)

let test_levels () =
  let n, a, _, n1, n2, q, out = tiny () in
  let lvl = Netlist.levels n in
  Alcotest.(check int) "input level" 0 lvl.(a);
  Alcotest.(check int) "dff level" 0 lvl.(q);
  Alcotest.(check int) "and level" 1 lvl.(n1);
  Alcotest.(check int) "not level" 2 lvl.(n2);
  Alcotest.(check int) "xor level" 2 lvl.(out)

let test_fanout () =
  let n, a, _, n1, _, _, _ = tiny () in
  let fo = Netlist.fanout n in
  Alcotest.(check int) "a fanout" 1 (Array.length fo.(a));
  Alcotest.(check int) "n1 fanout" 2 (Array.length fo.(n1))

let test_cycle_detect () =
  (* gate 0 references gate 1, gate 1 references gate 0: cycle *)
  let b = B.create () in
  let g0 = B.add b { Gate.op = Gate.And; fanin = [| 1; 1 |]; module_path = ""; drive = 0 } in
  let g1 = B.add b { Gate.op = Gate.Not; fanin = [| g0 |]; module_path = ""; drive = 0 } in
  ignore g1;
  let n = B.finish b in
  Alcotest.check_raises "cycle"
    (Failure "Netlist.levelize: combinational cycle (gate 0, and, module )")
    (fun () -> ignore (Netlist.levelize n))

let test_live_gates () =
  let b = B.create () in
  let a = B.add_op b Gate.Input [||] in
  let used = B.add_op b Gate.Not [| a |] in
  let dead = B.add_op b Gate.Not [| used |] in
  B.set_input_port b "a" [| a |];
  B.set_output_port b "out" [| used |];
  let n = B.finish b in
  let live = Netlist.live_gates n in
  Alcotest.(check bool) "used live" true live.(used);
  Alcotest.(check bool) "dead not live" false live.(dead);
  Alcotest.(check bool) "input live" true live.(a)

let test_compact () =
  let b = B.create () in
  let a = B.add_op b Gate.Input [||] in
  let konst = B.add_op b (Gate.Const Bit.One) [||] in
  let dead = B.add_op b Gate.Not [| a |] in
  let out = B.add_op b Gate.And [| a; konst |] in
  B.set_input_port b "a" [| a |];
  B.set_output_port b "out" [| out |];
  B.set_name b "hook" [| konst |];
  let n = B.finish b in
  let keep = Array.make (Netlist.gate_count n) true in
  keep.(dead) <- false;
  keep.(konst) <- false;
  let n', remap = Netlist.compact n ~keep in
  Alcotest.(check int) "dropped" (-1) remap.(dead);
  Alcotest.(check bool) "valid" true
    (match Netlist.validate n' with () -> true);
  (* The const reference was re-materialized as a tie cell. *)
  let out' = Netlist.find_output n' "out" in
  let and_gate = n'.Netlist.gates.(out'.(0)) in
  let tie = n'.Netlist.gates.(and_gate.Gate.fanin.(1)) in
  Alcotest.(check bool) "tie is const one" true
    (Gate.op_equal tie.Gate.op (Gate.Const Bit.One));
  (* hook name survived, pointing at the tie. *)
  let hook = Netlist.find_name n' "hook" in
  Alcotest.(check bool) "hook remapped to const" true
    (Gate.op_equal n'.Netlist.gates.(hook.(0)).Gate.op (Gate.Const Bit.One))

let test_module_of () =
  let b = B.create () in
  let a = B.add_op b ~module_path:"cpu/frontend" Gate.Input [||] in
  let g = B.add_op b ~module_path:"cpu/alu" Gate.Not [| a |] in
  B.set_input_port b "a" [| a |];
  B.set_output_port b "o" [| g |];
  let n = B.finish b in
  Alcotest.(check string) "module" "cpu" (Netlist.module_of n g);
  Alcotest.(check (list string)) "modules" [ "cpu" ] (Netlist.modules n)

let test_validate_errors () =
  let b = B.create () in
  let a = B.add_op b Gate.Input [||] in
  ignore (B.add b { Gate.op = Gate.And; fanin = [| a |]; module_path = ""; drive = 0 });
  Alcotest.(check bool) "arity error" true
    (try
       ignore (B.finish b);
       false
     with Failure _ -> true)

(* ---- serialization ---- *)

module Serial = Bespoke_netlist.Serial

let test_serial_roundtrip_tiny () =
  let n, _, _, _, _, _, _ = tiny () in
  let text = Serial.to_string n in
  let n' = Serial.of_string text in
  Alcotest.(check string) "stable reserialization" text (Serial.to_string n');
  Alcotest.(check int) "same gates" (Netlist.gate_count n) (Netlist.gate_count n');
  Alcotest.(check int) "same dffs" (Netlist.num_dffs n) (Netlist.num_dffs n')

let test_serial_roundtrip_cpu () =
  let n = Bespoke_cpu.Cpu.build () in
  let n' = Serial.of_string (Serial.to_string n) in
  Alcotest.(check int) "gates" (Netlist.gate_count n) (Netlist.gate_count n');
  Alcotest.(check (list string)) "modules" (Netlist.modules n) (Netlist.modules n');
  (* behaviourally identical on a quick run *)
  let img = Bespoke_isa.Asm.assemble "start: mov #42, &0x0012\n halt\n" in
  let r = Bespoke_cpu.Lockstep.run ~netlist:n' img in
  Alcotest.(check int) "runs" 42 r.Bespoke_cpu.Lockstep.gpio_final

let test_gate_set_roundtrip () =
  List.iter
    (fun n ->
      let set = Array.init n (fun i -> (i * 7) mod 3 = 0) in
      let set' = Serial.gate_set_of_string (Serial.gate_set_to_string set) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %d" n) true (set = set'))
    [ 0; 1; 4; 5; 255; 256; 257; 8192 ]

let test_gate_set_errors () =
  let expect text =
    match Serial.gate_set_of_string text with
    | exception Serial.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  expect "";
  expect "bespoke-gate-set 2 4\n0\n";
  expect "bespoke-gate-set 1 400\n00\n";
  expect "bespoke-gate-set 1 4\nzz\n"

let test_serial_errors () =
  let expect_error text =
    match Serial.of_string text with
    | exception Serial.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  expect_error "";
  expect_error "bespoke-netlist 2\nend\n";
  expect_error "bespoke-netlist 1\ngates 1\ng bogus 0 - 0\nend\n";
  expect_error "bespoke-netlist 1\ngates 2\ng input 0 -\nend\n";
  (* out-of-range fanin caught by validation *)
  expect_error "bespoke-netlist 1\ngates 1\ng not 0 - 7\nend\n"

let () =
  Alcotest.run "bespoke_netlist"
    [
      ( "netlist",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "levelize" `Quick test_levelize;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detect;
          Alcotest.test_case "live gates" `Quick test_live_gates;
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "module paths" `Quick test_module_of;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip tiny" `Quick test_serial_roundtrip_tiny;
          Alcotest.test_case "roundtrip cpu" `Slow test_serial_roundtrip_cpu;
          Alcotest.test_case "parse errors" `Quick test_serial_errors;
          Alcotest.test_case "gate-set roundtrip" `Quick test_gate_set_roundtrip;
          Alcotest.test_case "gate-set errors" `Quick test_gate_set_errors;
        ] );
    ]
