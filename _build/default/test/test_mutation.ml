module B = Bespoke_programs.Benchmark
module Asm = Bespoke_isa.Asm
module Mutation = Bespoke_mutation.Mutation
module Runner = Bespoke_core.Runner
module Iss = Bespoke_isa.Iss

let test_mutants_assemble () =
  List.iter
    (fun name ->
      let b = B.find name in
      let ms = Mutation.mutants b in
      Alcotest.(check bool) (name ^ " has mutants") true (List.length ms > 0);
      List.iter
        (fun (m : Mutation.mutant) ->
          match Asm.assemble m.Mutation.source with
          | _ -> ()
          | exception Asm.Error { line; message } ->
            Alcotest.failf "%s mutant %d does not assemble: line %d %s" name
              m.Mutation.id line message)
        ms)
    [ "binSearch"; "inSort"; "rle"; "tea8"; "Viterbi"; "autocorr" ]

let test_mutants_change_one_line () =
  let b = B.find "div" in
  List.iter
    (fun (m : Mutation.mutant) ->
      let base_lines = String.split_on_char '\n' b.B.source in
      let mut_lines = String.split_on_char '\n' m.Mutation.source in
      Alcotest.(check int) "same line count" (List.length base_lines)
        (List.length mut_lines);
      let diffs =
        List.combine base_lines mut_lines
        |> List.filter (fun (a, b) -> a <> b)
        |> List.length
      in
      Alcotest.(check int) "exactly one line changed" 1 diffs)
    (Mutation.mutants b)

let test_mutants_same_layout () =
  (* swapped mnemonics must encode to the same word count, so the
     binary layout (labels, vectors) is unchanged *)
  let b = B.find "tea8" in
  let base = Asm.assemble b.B.source in
  List.iter
    (fun (m : Mutation.mutant) ->
      let img = Asm.assemble m.Mutation.source in
      Alcotest.(check int)
        (Printf.sprintf "mutant %d word count" m.Mutation.id)
        (List.length base.Asm.words)
        (List.length img.Asm.words))
    (Mutation.mutants b)

let test_type_classification () =
  let src =
    {|
start:  mov #0x0280, sp
        mov #4, r4
loop:   dec r4
        jnz loop
        tst r4
        jz fwd
        nop
fwd:    halt
|}
  in
  let b =
    { (B.find "div") with B.name = "synthetic"; source = src }
  in
  let ms = Mutation.mutants b in
  let loops =
    List.filter (fun m -> m.Mutation.mtype = Mutation.Loop_conditional) ms
  in
  let conds = List.filter (fun m -> m.Mutation.mtype = Mutation.Conditional) ms in
  (* jnz loop is backward -> Type III; jz fwd is forward -> Type I *)
  Alcotest.(check bool) "has loop mutants" true
    (List.exists (fun m -> m.Mutation.original = "jnz") loops);
  Alcotest.(check bool) "has conditional mutants" true
    (List.exists (fun m -> m.Mutation.original = "jz") conds)

let test_mutant_is_runnable_or_diverges () =
  (* a mutant either halts with some result or loops forever; it must
     never crash the ISS with a bus/decoding error *)
  let b = B.find "inSort" in
  List.iter
    (fun (m : Mutation.mutant) ->
      let mb = Mutation.to_benchmark b m in
      let img = B.image mb in
      let t = Iss.create img in
      Iss.reset t;
      let inputs, gpio = mb.B.gen_inputs 1 in
      List.iter (fun (a, v) -> Iss.write_ram_word t a v) inputs;
      Iss.set_gpio_in t gpio;
      let steps = ref 0 in
      (try
         while (not (Iss.halted t)) && !steps < 30_000 do
           Iss.step t;
           incr steps
         done
       with
      | Iss.Bus_error _ -> Alcotest.failf "mutant %d bus error" m.Mutation.id
      | Bespoke_isa.Isa.Decode_error _ ->
        Alcotest.failf "mutant %d decode error" m.Mutation.id))
    (Mutation.mutants b)

let test_counts_by_type_sum () =
  let ms = Mutation.mutants (B.find "tea8") in
  let by = Mutation.count_by_type ms in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by in
  Alcotest.(check int) "sums to total" (List.length ms) total

let () =
  Alcotest.run "bespoke_mutation"
    [
      ( "mutation",
        [
          Alcotest.test_case "mutants assemble" `Quick test_mutants_assemble;
          Alcotest.test_case "one line changed" `Quick
            test_mutants_change_one_line;
          Alcotest.test_case "layout preserved" `Quick test_mutants_same_layout;
          Alcotest.test_case "type classification" `Quick
            test_type_classification;
          Alcotest.test_case "mutants run safely" `Quick
            test_mutant_is_runnable_or_diverges;
          Alcotest.test_case "counts sum" `Quick test_counts_by_type_sum;
        ] );
    ]
