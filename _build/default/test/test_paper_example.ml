(* The paper's illustrative example (Section 3.3, Figure 7), on a
   hand-built circuit with the same structure and punchline:

   - inputs A, B, C, D; gates a, b feed gate c; whenever the
     "application" runs, gate c's other input is at its controlling
     value, so tmp2 is constant 1 across every execution path even
     though C is unknown;
   - gate activity analysis (multi-path ternary simulation with
     possibly-toggled marking) finds exactly that;
   - cutting replaces gate c with a constant-1 tie;
   - re-synthesis then (1) turns the XOR fed by the constant into an
     inverter, and (2) sweeps gates a and b, which toggle but no
     longer reach any output. *)

module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module B = Netlist.Builder
module Engine = Bespoke_sim.Engine
module Cut = Bespoke_core.Cut
module Resynth = Bespoke_core.Resynth

type circuit = {
  net : Netlist.t;
  a : int;  (* INV A        -> tmp0 *)
  b : int;  (* AND tmp0 B   -> tmp1 *)
  c : int;  (* NAND tmp1 C  -> tmp2 *)
  d : int;  (* XOR tmp2 D   -> OUT  *)
}

let build () =
  let nb = B.create () in
  let in_a = B.add_op nb Gate.Input [||] in
  let in_b = B.add_op nb Gate.Input [||] in
  let in_c = B.add_op nb Gate.Input [||] in
  let in_d = B.add_op nb Gate.Input [||] in
  let a = B.add_op nb Gate.Not [| in_a |] in
  let b = B.add_op nb Gate.And [| a; in_b |] in
  let c = B.add_op nb Gate.Nand [| b; in_c |] in
  let d = B.add_op nb Gate.Xor [| c; in_d |] in
  B.set_input_port nb "A" [| in_a |];
  B.set_input_port nb "B" [| in_b |];
  B.set_input_port nb "C" [| in_c |];
  B.set_input_port nb "D" [| in_d |];
  B.set_output_port nb "OUT" [| d |];
  { net = B.finish nb; a; b; c; d }

(* The "application": in every execution path, whenever B is driven
   high A is also high (so tmp1 = and(not A, B) stays 0 and tmp2 is
   pinned at 1); C and D vary freely.  We simulate the same two
   execution paths as the paper's figure. *)
let run_paths circ =
  let eng = Engine.create circ.net in
  let possibly = Array.make (Netlist.gate_count circ.net) false in
  let apply (av, bv, cv, dv) =
    Engine.set_input eng "A" [| av |];
    Engine.set_input eng "B" [| bv |];
    Engine.set_input eng "C" [| cv |];
    Engine.set_input eng "D" [| dv |];
    Engine.eval eng
  in
  let feed path =
    match path with
    | [] -> ()
    | first :: rest ->
      Engine.reset eng;
      (* cycle 0 establishes the activity baseline (the paper's table
         starts from the cycle-0 values, not from an all-X state) *)
      apply first;
      Engine.clear_activity eng;
      Engine.commit_cycle eng;
      List.iter
        (fun inputs ->
          apply inputs;
          Engine.commit_cycle eng)
        rest;
      Engine.merge_possibly_toggled_into eng possibly
  in
  let one = Bit.One and zero = Bit.Zero and x = Bit.X in
  (* left execution path of Figure 7 *)
  feed
    [
      (one, zero, x, one);
      (one, zero, one, one);
      (one, zero, zero, one);
      (one, x, zero, one);
      (zero, zero, x, one);
    ];
  (* right execution path *)
  feed
    [
      (one, zero, x, one);
      (one, zero, one, zero);
      (one, x, zero, one);
      (zero, zero, zero, one);
      (x, zero, zero, zero);
    ];
  possibly

let test_analysis_finds_the_constant () =
  let circ = build () in
  let possibly = run_paths circ in
  Alcotest.(check bool) "gate a toggles" true possibly.(circ.a);
  Alcotest.(check bool) "gate d toggles" true possibly.(circ.d);
  Alcotest.(check bool) "tmp2 never toggles" false possibly.(circ.c)

let test_cut_and_resynthesis () =
  let circ = build () in
  let possibly = run_paths circ in
  let constants =
    Array.init (Netlist.gate_count circ.net) (fun id ->
        if id = circ.c then Bit.One else Bit.Zero)
  in
  let stitched = Cut.cut_and_stitch circ.net ~possibly_toggled:possibly ~constants in
  (* gate c is now a tie cell *)
  (match stitched.Netlist.gates.(circ.c).Gate.op with
  | Gate.Const Bit.One -> ()
  | op -> Alcotest.failf "gate c became %s" (Gate.op_name op));
  let final = Resynth.optimize stitched in
  (* the paper's punchline: one inverter remains *)
  Alcotest.(check int) "one gate remains" 1 (Netlist.num_gates final);
  let out = (Netlist.find_output final "OUT").(0) in
  (match final.Netlist.gates.(out).Gate.op with
  | Gate.Not -> ()
  | op -> Alcotest.failf "output driven by %s, not an inverter" (Gate.op_name op));
  (* and it still computes OUT = not D *)
  let eng = Engine.create final in
  Engine.reset eng;
  List.iter
    (fun dv ->
      Engine.set_input_int eng "D" dv;
      Engine.eval eng;
      Alcotest.(check (option int)) "out = not d" (Some (1 - dv))
        (Engine.read_int eng "OUT"))
    [ 0; 1 ]

let () =
  Alcotest.run "paper_example"
    [
      ( "figure7",
        [
          Alcotest.test_case "analysis finds the constant" `Quick
            test_analysis_finds_the_constant;
          Alcotest.test_case "cut, stitch, re-synthesize" `Quick
            test_cut_and_resynthesis;
        ] );
    ]
