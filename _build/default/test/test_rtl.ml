module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Rtl = Bespoke_rtl.Rtl
module Engine = Bespoke_sim.Engine

(* Build a single-output combinational circuit, synthesize it, and
   compare gate-level simulation against both the DSL reference
   evaluator and a direct integer-level function. *)
let check_comb ~name ~inputs ~build ~reference cases =
  let b = Rtl.create_builder () in
  let in_sigs = List.map (fun (n, w) -> (n, Rtl.input b n w)) inputs in
  let out = build (fun n -> List.assoc n in_sigs) in
  Rtl.output b "out" out;
  let net = Rtl.synthesize b in
  let eng = Engine.create net in
  List.iter
    (fun case ->
      Engine.reset eng;
      List.iter (fun (n, v) -> Engine.set_input_int eng n v) case;
      Engine.eval eng;
      let got = Engine.read_int eng "out" in
      let expect = reference case in
      let env n = Bvec.of_int ~width:(List.assoc n inputs) (List.assoc n case) in
      let ref_eval = Bvec.to_int (Rtl.eval_comb env out) in
      Alcotest.(check (option int))
        (Printf.sprintf "%s gate-level %s" name
           (String.concat "," (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) case)))
        (Some expect) got;
      Alcotest.(check (option int))
        (Printf.sprintf "%s reference" name)
        (Some expect) ref_eval)
    cases

let pairs16 =
  [
    [ ("a", 0); ("b", 0) ];
    [ ("a", 1); ("b", 0xffff) ];
    [ ("a", 0x1234); ("b", 0x4321) ];
    [ ("a", 0x8000); ("b", 0x8000) ];
    [ ("a", 0xffff); ("b", 0xffff) ];
    [ ("a", 42); ("b", 7) ];
  ]

let test_add () =
  check_comb ~name:"add"
    ~inputs:[ ("a", 16); ("b", 16) ]
    ~build:(fun env -> Rtl.add (env "a") (env "b"))
    ~reference:(fun c -> (List.assoc "a" c + List.assoc "b" c) land 0xffff)
    pairs16

let test_sub () =
  check_comb ~name:"sub"
    ~inputs:[ ("a", 16); ("b", 16) ]
    ~build:(fun env -> Rtl.sub (env "a") (env "b"))
    ~reference:(fun c -> (List.assoc "a" c - List.assoc "b" c) land 0xffff)
    pairs16

let test_mult () =
  check_comb ~name:"mult"
    ~inputs:[ ("a", 8); ("b", 8) ]
    ~build:(fun env -> Rtl.( *: ) (env "a") (env "b"))
    ~reference:(fun c -> List.assoc "a" c * List.assoc "b" c)
    [
      [ ("a", 0); ("b", 0) ];
      [ ("a", 255); ("b", 255) ];
      [ ("a", 12); ("b", 34) ];
      [ ("a", 200); ("b", 3) ];
    ]

let test_compare () =
  check_comb ~name:"less-than"
    ~inputs:[ ("a", 16); ("b", 16) ]
    ~build:(fun env -> Rtl.( <: ) (env "a") (env "b"))
    ~reference:(fun c -> if List.assoc "a" c < List.assoc "b" c then 1 else 0)
    pairs16;
  check_comb ~name:"equal"
    ~inputs:[ ("a", 16); ("b", 16) ]
    ~build:(fun env -> Rtl.( ==: ) (env "a") (env "b"))
    ~reference:(fun c -> if List.assoc "a" c = List.assoc "b" c then 1 else 0)
    pairs16

let test_mux_n () =
  check_comb ~name:"mux4"
    ~inputs:[ ("sel", 2); ("a", 8); ("b", 8) ]
    ~build:(fun env ->
      Rtl.mux (env "sel")
        [ env "a"; env "b"; Rtl.constant ~width:8 0x55; Rtl.constant ~width:8 0xaa ])
    ~reference:(fun c ->
      match List.assoc "sel" c with
      | 0 -> List.assoc "a" c
      | 1 -> List.assoc "b" c
      | 2 -> 0x55
      | _ -> 0xaa)
    [
      [ ("sel", 0); ("a", 11); ("b", 22) ];
      [ ("sel", 1); ("a", 11); ("b", 22) ];
      [ ("sel", 2); ("a", 11); ("b", 22) ];
      [ ("sel", 3); ("a", 11); ("b", 22) ];
    ]

let test_shifts () =
  check_comb ~name:"sll3"
    ~inputs:[ ("a", 16) ]
    ~build:(fun env -> Rtl.sll_const (env "a") 3)
    ~reference:(fun c -> (List.assoc "a" c lsl 3) land 0xffff)
    [ [ ("a", 0x1234) ]; [ ("a", 0xffff) ] ];
  check_comb ~name:"srl5"
    ~inputs:[ ("a", 16) ]
    ~build:(fun env -> Rtl.srl_const (env "a") 5)
    ~reference:(fun c -> List.assoc "a" c lsr 5)
    [ [ ("a", 0x1234) ]; [ ("a", 0xffff) ] ]

let test_resize () =
  check_comb ~name:"sresize"
    ~inputs:[ ("a", 8) ]
    ~build:(fun env -> Rtl.sresize (env "a") 16)
    ~reference:(fun c ->
      let a = List.assoc "a" c in
      if a land 0x80 <> 0 then a lor 0xff00 else a)
    [ [ ("a", 0x7f) ]; [ ("a", 0x80) ]; [ ("a", 0xff) ]; [ ("a", 0) ] ]

let test_counter () =
  let b = Rtl.create_builder () in
  let en = Rtl.input b "en" 1 in
  let count = Rtl.wire 8 in
  let q = Rtl.reg b ~enable:en ~init:0 (Rtl.add count (Rtl.constant ~width:8 1)) in
  Rtl.( <== ) count q;
  Rtl.output b "q" q;
  let net = Rtl.synthesize b in
  let eng = Engine.create net in
  Engine.reset eng;
  Engine.set_input_int eng "en" 1;
  Engine.eval eng;
  for i = 1 to 5 do
    Engine.step eng;
    Alcotest.(check (option int)) "count" (Some i) (Engine.read_int eng "q")
  done;
  Engine.set_input_int eng "en" 0;
  Engine.eval eng;
  Engine.step eng;
  Alcotest.(check (option int)) "held" (Some 5) (Engine.read_int eng "q")

let test_reg_clear () =
  let b = Rtl.create_builder () in
  let clr = Rtl.input b "clr" 1 in
  let d = Rtl.input b "d" 4 in
  let q = Rtl.reg b ~clear:clr ~clear_to:0x9 ~init:0 d in
  Rtl.output b "q" q;
  let net = Rtl.synthesize b in
  let eng = Engine.create net in
  Engine.reset eng;
  Engine.set_input_int eng "clr" 0;
  Engine.set_input_int eng "d" 5;
  Engine.eval eng;
  Engine.step eng;
  Alcotest.(check (option int)) "loaded" (Some 5) (Engine.read_int eng "q");
  Engine.set_input_int eng "clr" 1;
  Engine.eval eng;
  Engine.step eng;
  Alcotest.(check (option int)) "cleared" (Some 9) (Engine.read_int eng "q")

let test_constant_folding () =
  (* A circuit of constants must synthesize to zero real gates. *)
  let b = Rtl.create_builder () in
  let x = Rtl.constant ~width:8 0x5a in
  let y = Rtl.add x (Rtl.constant ~width:8 0x11) in
  Rtl.output b "out" y;
  let net = Rtl.synthesize b in
  Alcotest.(check int) "no gates" 0 (Netlist.num_gates net);
  let eng = Engine.create net in
  Engine.reset eng;
  Alcotest.(check (option int)) "value" (Some 0x6b) (Engine.read_int eng "out")

let test_cse () =
  (* a&b used twice must synthesize one AND gate. *)
  let b = Rtl.create_builder () in
  let x = Rtl.input b "x" 1 and y = Rtl.input b "y" 1 in
  let both = Rtl.( &: ) x y in
  let both2 = Rtl.( &: ) x y in
  Rtl.output b "o1" both;
  Rtl.output b "o2" both2;
  let net = Rtl.synthesize b in
  Alcotest.(check int) "one and" 1 (Netlist.num_gates net)

let test_scope_tagging () =
  let b = Rtl.create_builder () in
  let x = Rtl.input b "x" 1 in
  let inner =
    Rtl.in_scope b "top" (fun () ->
        Rtl.in_scope b "alu" (fun () -> Rtl.( ~: ) x))
  in
  Rtl.output b "o" inner;
  let net = Rtl.synthesize b in
  let o = Netlist.find_output net "o" in
  Alcotest.(check string) "path" "top/alu"
    net.Netlist.gates.(o.(0)).Bespoke_netlist.Gate.module_path

(* Random expression property: gate-level == reference evaluator. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf w = oneof [ return `A; return `B; map (fun n -> `Const n) (int_bound ((1 lsl w) - 1)) ] in
  fix
    (fun self depth ->
      if depth = 0 then leaf 8
      else
        frequency
          [
            (2, leaf 8);
            (2, map2 (fun a b -> `And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> `Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> `Xor (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> `Not a) (self (depth - 1)));
            (2, map2 (fun a b -> `Add (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> `Sub (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map3 (fun s a b -> `Mux (s, a, b)) (self (depth - 1)) (self (depth - 1)) (self (depth - 1)));
          ])
    4

let rec build_expr env = function
  | `A -> env "a"
  | `B -> env "b"
  | `Const n -> Rtl.constant ~width:8 n
  | `And (a, b) -> Rtl.( &: ) (build_expr env a) (build_expr env b)
  | `Or (a, b) -> Rtl.( |: ) (build_expr env a) (build_expr env b)
  | `Xor (a, b) -> Rtl.( ^: ) (build_expr env a) (build_expr env b)
  | `Not a -> Rtl.( ~: ) (build_expr env a)
  | `Add (a, b) -> Rtl.add (build_expr env a) (build_expr env b)
  | `Sub (a, b) -> Rtl.sub (build_expr env a) (build_expr env b)
  | `Mux (s, a, b) ->
    Rtl.mux2 (Rtl.bit (build_expr env s) 0) (build_expr env a) (build_expr env b)

let rec eval_expr a b = function
  | `A -> a
  | `B -> b
  | `Const n -> n
  | `And (x, y) -> eval_expr a b x land eval_expr a b y
  | `Or (x, y) -> eval_expr a b x lor eval_expr a b y
  | `Xor (x, y) -> eval_expr a b x lxor eval_expr a b y
  | `Not x -> lnot (eval_expr a b x) land 0xff
  | `Add (x, y) -> (eval_expr a b x + eval_expr a b y) land 0xff
  | `Sub (x, y) -> (eval_expr a b x - eval_expr a b y) land 0xff
  | `Mux (s, x, y) ->
    if eval_expr a b s land 1 = 0 then eval_expr a b x else eval_expr a b y

let test_random_exprs =
  QCheck.Test.make ~name:"synthesized circuit matches direct evaluation"
    ~count:60
    (QCheck.make
       QCheck.Gen.(triple gen_expr (int_bound 255) (int_bound 255)))
    (fun (e, av, bv) ->
      let b = Rtl.create_builder () in
      let a = Rtl.input b "a" 8 and bb = Rtl.input b "b" 8 in
      let env n = if n = "a" then a else bb in
      let out = build_expr env e in
      Rtl.output b "out" out;
      let net = Rtl.synthesize b in
      let eng = Engine.create net in
      Engine.reset eng;
      Engine.set_input_int eng "a" av;
      Engine.set_input_int eng "b" bv;
      Engine.eval eng;
      Engine.read_int eng "out" = Some (eval_expr av bv e))

(* X-propagation soundness through a synthesized circuit: with one
   input X, the gate-level ternary output must subsume both
   concretizations. *)
let test_x_soundness =
  QCheck.Test.make ~name:"ternary gate sim subsumes concretizations" ~count:40
    (QCheck.make QCheck.Gen.(pair gen_expr (int_bound 255)))
    (fun (e, av) ->
      let b = Rtl.create_builder () in
      let a = Rtl.input b "a" 8 and bb = Rtl.input b "b" 8 in
      let env n = if n = "a" then a else bb in
      Rtl.output b "out" (build_expr env e);
      let net = Rtl.synthesize b in
      let eng = Engine.create net in
      Engine.reset eng;
      Engine.set_input_int eng "a" av;
      Engine.set_input_x eng "b";
      Engine.eval eng;
      let tern = Engine.read eng "out" in
      List.for_all
        (fun bv ->
          let concrete = Bvec.of_int ~width:8 (eval_expr av bv e) in
          Bvec.subsumes ~general:tern ~specific:concrete)
        [ 0; 1; 0x55; 0xaa; 0xff; 37; 200 ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_rtl"
    [
      ( "comb",
        [
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "mult" `Quick test_mult;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "mux" `Quick test_mux_n;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "resize" `Quick test_resize;
        ] );
      ( "seq",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "clear" `Quick test_reg_clear;
        ] );
      ( "synth",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "scopes" `Quick test_scope_tagging;
          qt test_random_exprs;
          qt test_x_soundness;
        ] );
    ]
