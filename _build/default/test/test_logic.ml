module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec

let all_bits = [ Bit.Zero; Bit.One; Bit.X ]

let bit_testable = Alcotest.testable Bit.pp Bit.equal

let check_bit = Alcotest.check bit_testable

(* An operator's ternary extension is sound iff for every assignment of
   concrete values to X inputs, the concrete result is subsumed by the
   ternary result. *)
let soundness2 name top bop () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let t = top a b in
          List.iter
            (fun ca ->
              List.iter
                (fun cb ->
                  let concrete =
                    Bit.of_bool (bop (Bit.to_bool_exn ca) (Bit.to_bool_exn cb))
                  in
                  if not (Bit.subsumes t concrete) then
                    Alcotest.failf "%s(%c,%c)=%c not subsuming %c,%c->%c" name
                      (Bit.to_char a) (Bit.to_char b) (Bit.to_char t)
                      (Bit.to_char ca) (Bit.to_char cb) (Bit.to_char concrete))
                (Bit.concretizations b))
            (Bit.concretizations a))
        all_bits)
    all_bits

(* Exactness: if the ternary result is X there must exist two
   concretizations producing different results. *)
let exactness2 name top bop () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match top a b with
          | Bit.X ->
            let results =
              List.concat_map
                (fun ca ->
                  List.map
                    (fun cb ->
                      bop (Bit.to_bool_exn ca) (Bit.to_bool_exn cb))
                    (Bit.concretizations b))
                (Bit.concretizations a)
            in
            if List.for_all (fun r -> r = List.hd results) results then
              Alcotest.failf "%s(%c,%c) = X but all concretizations agree" name
                (Bit.to_char a) (Bit.to_char b)
          | Bit.Zero | Bit.One -> ())
        all_bits)
    all_bits

let ops2 =
  [
    ("and", Bit.land_, ( && ));
    ("or", Bit.lor_, ( || ));
    ("xor", Bit.lxor_, ( <> ));
    ("nand", Bit.lnand, fun a b -> not (a && b));
    ("nor", Bit.lnor, fun a b -> not (a || b));
    ("xnor", Bit.lxnor, ( = ));
  ]

let test_tables () =
  List.iter
    (fun (name, f, tbl) ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let via_tbl =
                Bit.of_int_exn tbl.((Bit.to_int a * 3) + Bit.to_int b)
              in
              check_bit (name ^ " table") (f a b) via_tbl)
            all_bits)
        all_bits)
    [
      ("and", Bit.land_, Bit.tbl_and);
      ("or", Bit.lor_, Bit.tbl_or);
      ("xor", Bit.lxor_, Bit.tbl_xor);
      ("nand", Bit.lnand, Bit.tbl_nand);
      ("nor", Bit.lnor, Bit.tbl_nor);
      ("xnor", Bit.lxnor, Bit.tbl_xnor);
      ("merge", Bit.merge, Bit.tbl_merge);
    ]

let test_mux () =
  check_bit "mux 0" (Bit.mux Bit.Zero Bit.One Bit.Zero) Bit.One;
  check_bit "mux 1" (Bit.mux Bit.One Bit.One Bit.Zero) Bit.Zero;
  check_bit "mux x same" (Bit.mux Bit.X Bit.One Bit.One) Bit.One;
  check_bit "mux x diff" (Bit.mux Bit.X Bit.One Bit.Zero) Bit.X;
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let t = Bit.mux s a b in
              let idx = (Bit.to_int s * 9) + (Bit.to_int a * 3) + Bit.to_int b in
              check_bit "mux table" t (Bit.of_int_exn Bit.tbl_mux.(idx)))
            all_bits)
        all_bits)
    all_bits

let test_merge_subsumes () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let m = Bit.merge a b in
          Alcotest.(check bool)
            "merge subsumes left" true (Bit.subsumes m a);
          Alcotest.(check bool)
            "merge subsumes right" true (Bit.subsumes m b))
        all_bits)
    all_bits;
  Alcotest.(check bool) "x subsumes 0" true (Bit.subsumes Bit.X Bit.Zero);
  Alcotest.(check bool) "0 !subsumes x" false (Bit.subsumes Bit.Zero Bit.X)

let test_chars () =
  List.iter
    (fun b -> check_bit "char roundtrip" b (Bit.of_char (Bit.to_char b)))
    all_bits;
  Alcotest.check_raises "bad char" (Invalid_argument "Bit.of_char: q") (fun () ->
      ignore (Bit.of_char 'q'))

(* ---- Bvec ---- *)

let test_bvec_int_roundtrip () =
  List.iter
    (fun n ->
      let v = Bvec.of_int ~width:16 n in
      Alcotest.(check (option int)) "roundtrip" (Some (n land 0xffff))
        (Bvec.to_int v))
    [ 0; 1; 2; 0x7fff; 0x8000; 0xffff; 12345 ]

let test_bvec_signed () =
  Alcotest.(check (option int))
    "neg" (Some (-1))
    (Bvec.to_signed_int (Bvec.of_int ~width:16 0xffff));
  Alcotest.(check (option int))
    "pos" (Some 5)
    (Bvec.to_signed_int (Bvec.of_int ~width:16 5));
  Alcotest.(check (option int))
    "min" (Some (-32768))
    (Bvec.to_signed_int (Bvec.of_int ~width:16 0x8000))

let test_bvec_strings () =
  let v = Bvec.of_string "10x1" in
  Alcotest.(check string) "roundtrip" "10x1" (Bvec.to_string v);
  Alcotest.(check (option int)) "unknown" None (Bvec.to_int v)

let test_bvec_add_concrete =
  QCheck.Test.make ~name:"bvec add matches int add" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (a, b) ->
      let va = Bvec.of_int ~width:16 a and vb = Bvec.of_int ~width:16 b in
      Bvec.to_int (Bvec.add va vb) = Some ((a + b) land 0xffff))

let gen_tern_vec =
  QCheck.Gen.(
    list_size (return 16) (oneofl [ Bit.Zero; Bit.One; Bit.X ])
    |> map Array.of_list)

let arb_tern_vec =
  QCheck.make ~print:(fun v -> Bvec.to_string v) gen_tern_vec

let test_bvec_add_sound =
  QCheck.Test.make ~name:"ternary add subsumes concrete adds" ~count:200
    QCheck.(pair arb_tern_vec arb_tern_vec)
    (fun (a, b) ->
      QCheck.assume (Bvec.count_x a + Bvec.count_x b <= 6);
      let t = Bvec.add a b in
      List.for_all
        (fun ca ->
          List.for_all
            (fun cb ->
              let concrete =
                Bvec.of_int ~width:16
                  (Bvec.to_int_exn ca + Bvec.to_int_exn cb)
              in
              Bvec.subsumes ~general:t ~specific:concrete)
            (Bvec.concretizations b))
        (Bvec.concretizations a))

let test_bvec_merge_props =
  QCheck.Test.make ~name:"merge is lub-ish" ~count:300
    QCheck.(pair arb_tern_vec arb_tern_vec)
    (fun (a, b) ->
      let m = Bvec.merge a b in
      Bvec.subsumes ~general:m ~specific:a
      && Bvec.subsumes ~general:m ~specific:b)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_logic"
    [
      ( "bit",
        [
          Alcotest.test_case "operator tables" `Quick test_tables;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "merge/subsumes" `Quick test_merge_subsumes;
          Alcotest.test_case "char conversions" `Quick test_chars;
        ]
        @ List.concat_map
            (fun (name, top, bop) ->
              [
                Alcotest.test_case (name ^ " sound") `Quick
                  (soundness2 name top bop);
                Alcotest.test_case (name ^ " exact") `Quick
                  (exactness2 name top bop);
              ])
            ops2 );
      ( "bvec",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bvec_int_roundtrip;
          Alcotest.test_case "signed" `Quick test_bvec_signed;
          Alcotest.test_case "strings" `Quick test_bvec_strings;
          qt test_bvec_add_concrete;
          qt test_bvec_add_sound;
          qt test_bvec_merge_props;
        ] );
    ]
