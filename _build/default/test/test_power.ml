module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Rtl = Bespoke_rtl.Rtl
module Cells = Bespoke_cells.Cells
module Sta = Bespoke_power.Sta
module Report = Bespoke_power.Report
module Voltage = Bespoke_power.Voltage

let adder_net width =
  let b = Rtl.create_builder () in
  let x = Rtl.input b "x" width and y = Rtl.input b "y" width in
  Rtl.output b "s" (Rtl.add x y);
  Rtl.synthesize b

let test_sta_monotone_width () =
  (* a wider ripple adder has a longer critical path *)
  let c8 = (Sta.analyze (adder_net 8)).Sta.critical_path_ps in
  let c16 = (Sta.analyze (adder_net 16)).Sta.critical_path_ps in
  Alcotest.(check bool) "positive" true (c8 > 0.0);
  Alcotest.(check bool) "wider is slower" true (c16 > c8)

let test_sta_registers_bound_paths () =
  (* inserting a register stage cuts the combinational path: compare a
     three-adder chain against the same function with a register after
     the second adder *)
  let chained =
    let b = Rtl.create_builder () in
    let x = Rtl.input b "x" 16
    and y = Rtl.input b "y" 16
    and z = Rtl.input b "z" 16
    and w = Rtl.input b "w" 16 in
    Rtl.output b "s" (Rtl.add (Rtl.add (Rtl.add x y) z) w);
    Rtl.synthesize b
  in
  let pipelined =
    let b = Rtl.create_builder () in
    let x = Rtl.input b "x" 16
    and y = Rtl.input b "y" 16
    and z = Rtl.input b "z" 16
    and w = Rtl.input b "w" 16 in
    let stage = Rtl.reg b ~init:0 (Rtl.add (Rtl.add x y) z) in
    Rtl.output b "s" (Rtl.add stage w);
    Rtl.synthesize b
  in
  let c1 = (Sta.analyze chained).Sta.critical_path_ps in
  let c2 = (Sta.analyze pipelined).Sta.critical_path_ps in
  Alcotest.(check bool) "pipelining shortens the critical path" true (c2 < c1)

let test_area_additive () =
  let a8 = Report.area_um2 (adder_net 8) in
  let a16 = Report.area_um2 (adder_net 16) in
  Alcotest.(check bool) "positive" true (a8 > 0.0);
  Alcotest.(check bool) "roughly doubles" true
    (a16 > 1.7 *. a8 && a16 < 2.3 *. a8)

let test_power_components () =
  let net = adder_net 16 in
  let ng = Netlist.gate_count net in
  let zero = Array.make ng 0 in
  let idle = Report.power ~freq_hz:1e8 ~toggles:zero ~cycles:100 net in
  Alcotest.(check bool) "no dynamic when idle" true
    (idle.Report.dynamic_nw = 0.0);
  Alcotest.(check bool) "leakage positive" true (idle.Report.leakage_nw > 0.0);
  let busy = Report.power ~freq_hz:1e8 ~toggles:(Array.make ng 50) ~cycles:100 net in
  Alcotest.(check bool) "dynamic grows with toggles" true
    (busy.Report.dynamic_nw > 0.0);
  Alcotest.(check bool) "total = sum" true
    (abs_float
       (busy.Report.total_nw
       -. (busy.Report.leakage_nw +. busy.Report.dynamic_nw +. busy.Report.clock_nw))
    < 1e-6)

let test_cell_library_consistency () =
  let module Gate = Bespoke_netlist.Gate in
  List.iter
    (fun op ->
      let x1 = Cells.of_gate op ~drive:0 in
      let x2 = Cells.of_gate op ~drive:1 in
      Alcotest.(check bool) (x1.Cells.name ^ " x2 bigger") true
        (x2.Cells.area_um2 > x1.Cells.area_um2);
      Alcotest.(check bool) (x1.Cells.name ^ " x2 leakier") true
        (x2.Cells.leakage_nw > x1.Cells.leakage_nw);
      Alcotest.(check bool) (x1.Cells.name ^ " x2 drives harder") true
        (x2.Cells.drive_res_ps_per_ff < x1.Cells.drive_res_ps_per_ff);
      Alcotest.(check bool) (x1.Cells.name ^ " positive cap") true
        (x1.Cells.input_cap_ff > 0.0))
    [ Gate.Not; Gate.And; Gate.Or; Gate.Xor; Gate.Mux; Gate.Dff Bespoke_logic.Bit.Zero ];
  (* ports and tie cells are free *)
  let port = Cells.of_gate Gate.Input ~drive:0 in
  Alcotest.(check (float 0.0)) "port free" 0.0 port.Cells.area_um2;
  (* wire load grows with fanout *)
  Alcotest.(check bool) "wire cap monotone" true
    (Cells.wire_cap_ff ~fanout:10 > Cells.wire_cap_ff ~fanout:1)

let test_voltage_scaling_model () =
  Alcotest.(check (float 1e-9)) "nominal is 1x" 1.0
    (Cells.delay_scale ~vdd:Cells.vdd_nominal);
  Alcotest.(check bool) "lower V is slower" true
    (Cells.delay_scale ~vdd:0.7 > 1.0);
  Alcotest.(check bool) "dynamic quadratic" true
    (abs_float (Cells.dynamic_scale ~vdd:0.5 -. 0.25) < 1e-9)

let test_vmin_monotone () =
  (* more slack (shorter critical path) allows a lower Vmin *)
  let v1 = Voltage.vmin ~critical_path_ps:9000.0 ~period_ps:10000.0 in
  let v2 = Voltage.vmin ~critical_path_ps:4000.0 ~period_ps:10000.0 in
  let v3 = Voltage.vmin ~critical_path_ps:500.0 ~period_ps:10000.0 in
  Alcotest.(check bool) "ordering" true (v3 <= v2 && v2 <= v1);
  Alcotest.(check bool) "never below floor" true (v3 >= Cells.vdd_floor -. 1e-9);
  Alcotest.(check bool) "no slack -> nominal" true
    (Voltage.vmin ~critical_path_ps:10000.0 ~period_ps:10000.0
    >= Cells.vdd_nominal -. 1e-9)

let test_vmin_safe =
  QCheck.Test.make ~name:"vmin always meets timing with guard band" ~count:200
    QCheck.(pair (float_range 100.0 20000.0) (float_range 100.0 20000.0))
    (fun (crit, period) ->
      let v = Voltage.vmin ~critical_path_ps:crit ~period_ps:period in
      (* if vmin < nominal was chosen, the scaled path must fit *)
      v >= Cells.vdd_nominal -. 1e-9
      || Cells.delay_scale ~vdd:v *. crit *. Cells.guard_band <= period +. 1e-6)

let test_downsize_only_reduces () =
  let net = Bespoke_cpu.Cpu.build () in
  let down = Sta.downsize net in
  Alcotest.(check int) "same gate count" (Netlist.gate_count net)
    (Netlist.gate_count down);
  Alcotest.(check bool) "area not larger" true
    (Report.area_um2 down <= Report.area_um2 net +. 1e-6)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_power"
    [
      ( "sta",
        [
          Alcotest.test_case "wider adder slower" `Quick test_sta_monotone_width;
          Alcotest.test_case "registers bound paths" `Quick
            test_sta_registers_bound_paths;
        ] );
      ( "report",
        [
          Alcotest.test_case "area additive" `Quick test_area_additive;
          Alcotest.test_case "power components" `Quick test_power_components;
        ] );
      ( "cells",
        [
          Alcotest.test_case "library consistency" `Quick
            test_cell_library_consistency;
        ] );
      ( "voltage",
        [
          Alcotest.test_case "scaling model" `Quick test_voltage_scaling_model;
          Alcotest.test_case "vmin monotone" `Quick test_vmin_monotone;
          qt test_vmin_safe;
        ] );
      ( "sizing",
        [ Alcotest.test_case "downsize reduces" `Slow test_downsize_only_reduces ] );
    ]
