(* Quickstart: tailor a bespoke processor to a tiny program you write
   yourself, then prove it still runs the program.

   Run with: dune exec examples/quickstart.exe *)

module Asm = Bespoke_isa.Asm
module Cpu = Bespoke_cpu.Cpu
module System = Bespoke_cpu.System
module Lockstep = Bespoke_cpu.Lockstep
module Activity = Bespoke_analysis.Activity
module Cut = Bespoke_core.Cut
module Netlist = Bespoke_netlist.Netlist
module Report = Bespoke_power.Report

let program =
  {|
; Average the GPIO input with a rolling accumulator, eight rounds.
start:  mov #0x0280, sp
        clr r5
        mov #8, r6
loop:   mov &0x0010, r4      ; read the input port
        add r4, r5
        rra r5               ; leaky average
        dec r6
        jnz loop
        mov r5, &0x0012      ; drive the output port
        halt
|}

let () =
  (* 1. assemble the application *)
  let image = Asm.assemble program in
  (* 2. build the general-purpose microcontroller netlist *)
  let sys = System.create image in
  let net = System.netlist sys in
  Format.printf "general-purpose core: %a@." Netlist.pp_summary net;
  (* 3. input-independent gate activity analysis (the GPIO port is
     unknown during analysis, so the result holds for every input) *)
  let report = Activity.analyze sys in
  Format.printf "analysis: %d paths explored, %d gates exercisable@."
    report.Activity.paths
    (Activity.exercisable_count report);
  (* 4. cut & stitch -> the bespoke processor *)
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  Format.printf "bespoke: %a@." Cut.pp_stats stats;
  Format.printf "area: %.0f -> %.0f um2@."
    (Report.area_um2 net) (Report.area_um2 bespoke);
  (* 5. the unmodified binary still runs, for any input: spot-check a
     few against the golden instruction-set simulator *)
  List.iter
    (fun gpio_in ->
      let r = Lockstep.run ~netlist:bespoke ~gpio_in image in
      Format.printf "gpio_in=%5d -> output %d (verified, %d cycles)@."
        gpio_in r.Lockstep.gpio_final r.Lockstep.cycles)
    [ 0; 100; 9999; 65535 ]
