examples/multi_app_product.mli:
