examples/asic_handoff.ml: Bespoke_analysis Bespoke_core Bespoke_cpu Bespoke_logic Bespoke_netlist Bespoke_programs Bespoke_sim Buffer Filename Format List String Sys
