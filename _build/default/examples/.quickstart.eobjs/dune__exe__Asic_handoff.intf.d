examples/asic_handoff.mli:
