examples/quickstart.mli:
