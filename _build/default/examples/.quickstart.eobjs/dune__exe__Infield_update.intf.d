examples/infield_update.mli:
