examples/sensor_node.ml: Bespoke_analysis Bespoke_core Bespoke_power Bespoke_programs Format List
